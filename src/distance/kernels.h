#ifndef PPC_DISTANCE_KERNELS_H_
#define PPC_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace ppc {

/// Row kernels of the quadratic protocol phases, with a scalar reference
/// implementation and an AVX2 path selected at runtime — the PR-5 crypto
/// treatment (crypto/aes128.h) applied to the comparison/recover/
/// dissimilarity inner loops, which became the dominant cost once the
/// per-frame crypto fixed cost was gone.
///
/// Every kernel is a pure function over one row of a matrix: the callers
/// (core/numeric_protocol, core/alphanumeric_protocol, core/third_party,
/// distance/comparators) hoist the per-row PRNG state — the protocols reset
/// their generators at every row, so each row reads the *same* mask/sign
/// prefix, which is precisely what turns the inner loops into branch-free
/// data-parallel sweeps.
///
/// Both paths are asserted bit-identical (tests/distance_kernels_test.cc):
/// the ring arithmetic is exact integer math, and the uint64 -> double
/// conversions use the exact-rounding split (2^52/2^84 magic constants), so
/// the AVX2 path rounds every lane identically to `static_cast<double>`.
class DistanceKernels {
 public:
  enum class Kernel : uint8_t {
    kScalar,  ///< Portable reference loops.
    kAvx2,    ///< 256-bit SIMD rows (runtime-detected).
  };

  /// Canonical name of `kernel` ("scalar" / "avx2").
  static const char* KernelToString(Kernel kernel);

  /// True when the host CPU executes AVX2.
  static bool Avx2Supported();

  /// The kernel every row call dispatches to: kAvx2 when the CPU supports
  /// it, unless the `PPC_FORCE_SCALAR_KERNELS` environment variable is set
  /// (the CI scalar leg) or a test pin overrides it. Resolved once and
  /// cached.
  static Kernel Active();

  /// Test-only pin: forces every subsequent row call onto `kernel`.
  /// Refuses kAvx2 on a CPU without it. The conformance tests pin kScalar,
  /// record outputs, pin kAvx2, and assert bit equality.
  static Status PinForTesting(Kernel kernel);
  static void ClearPinForTesting();

  // -- Numeric comparison rounds (ring Z_2^64 rows) --------------------------

  /// Fig. 5 row: out[i] = masked[i] + (negate_mask[i] ? -value : +value),
  /// mod 2^64. `negate_mask[i]` is all-ones (negate) or zero, the hoisted
  /// opposite-sign coin row of the responder.
  static void AddSignedRow(const uint64_t* masked,
                           const uint64_t* negate_mask, uint64_t value,
                           uint64_t* out, size_t n);

  /// Fig. 6 row: out[i] = |cells[i] - masks[i]| interpreting the difference
  /// as a signed ring element (NumericProtocol::AbsFromRing).
  static void SubAbsRow(const uint64_t* cells, const uint64_t* masks,
                        uint64_t* out, size_t n);

  // -- Local dissimilarity rows (Fig. 12) ------------------------------------

  /// out[j] = double(|value - values[j]|), the Comparators::NumericDistance
  /// row of an integer attribute's matrix.
  static void AbsDiffRow(int64_t value, const int64_t* values, double* out,
                         size_t n);

  /// Same, then scaled by `scale` — the fixed-point decode of a real
  /// attribute (FixedPointCodec::Decode is a single multiply). Exact: the
  /// codec's encode guard keeps every |difference| below 2^53.
  static void AbsDiffScaledRow(int64_t value, const int64_t* values,
                               double scale, double* out, size_t n);

  // -- Third-party install rows ----------------------------------------------

  /// out[i] = double(in[i]) — the recovered-distance block fill of an
  /// integer attribute.
  static void U64ToDoubleRow(const uint64_t* in, double* out, size_t n);

  /// out[i] = double(in[i]) * scale — the real-attribute block fill
  /// (recovered fixed-point distance through FixedPointCodec::Decode).
  static void U64ToDoubleScaledRow(const uint64_t* in, double scale,
                                   double* out, size_t n);

  // -- Alphanumeric rounds (mod-|A| byte rows) -------------------------------

  /// Fig. 9 grid row: out[p] = (masked[p] - own_symbol) mod alphabet_size.
  /// Requires masked[p] < alphabet_size (callers validate wire input) and
  /// alphabet_size <= 256; own_symbol is reduced mod alphabet_size.
  static void SubModRow(const uint8_t* masked, uint8_t own_symbol,
                        size_t alphabet_size, uint8_t* out, size_t n);

  /// Fig. 10 CCM row: out[p] = cells[p] == masks[p] ? 0 : 1. Equivalent to
  /// SubMod(cells[p], masks[p]) == 0 iff both operands are already reduced
  /// mod the alphabet size (callers validate wire input).
  static void NotEqualRow(const uint8_t* cells, const uint8_t* masks,
                          uint8_t* out, size_t n);
};

}  // namespace ppc

#endif  // PPC_DISTANCE_KERNELS_H_
