#include "distance/dissimilarity_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ppc {

DissimilarityMatrix::DissimilarityMatrix(size_t num_objects)
    : num_objects_(num_objects),
      cells_(num_objects < 2 ? 0 : num_objects * (num_objects - 1) / 2, 0.0) {}

Result<double> DissimilarityMatrix::At(size_t i, size_t j) const {
  if (i >= num_objects_ || j >= num_objects_) {
    return Status::OutOfRange("object index out of range");
  }
  return at(i, j);
}

Status DissimilarityMatrix::Set(size_t i, size_t j, double value) {
  if (i >= num_objects_ || j >= num_objects_) {
    return Status::OutOfRange("object index out of range");
  }
  if (i == j) {
    return Status::InvalidArgument("diagonal entries are fixed at zero");
  }
  set(i, j, value);
  return Status::OK();
}

double DissimilarityMatrix::MaxValue() const {
  double max = 0.0;
  for (double v : cells_) max = std::max(max, v);
  return max;
}

void DissimilarityMatrix::Normalize() {
  double max = MaxValue();
  if (max <= 0.0) return;
  for (double& v : cells_) v /= max;
}

Result<DissimilarityMatrix> DissimilarityMatrix::WeightedMerge(
    const std::vector<const DissimilarityMatrix*>& matrices,
    const std::vector<double>& weights) {
  if (matrices.empty() || matrices.size() != weights.size()) {
    return Status::InvalidArgument(
        "need equal, nonzero numbers of matrices and weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("at least one weight must be positive");
  }
  size_t n = matrices[0]->num_objects();
  for (const DissimilarityMatrix* m : matrices) {
    if (m->num_objects() != n) {
      return Status::InvalidArgument("matrices disagree on object count");
    }
  }
  DissimilarityMatrix merged(n);
  for (size_t k = 0; k < matrices.size(); ++k) {
    double w = weights[k] / total;
    if (w == 0.0) continue;
    for (size_t idx = 0; idx < merged.cells_.size(); ++idx) {
      merged.cells_[idx] += w * matrices[k]->cells_[idx];
    }
  }
  return merged;
}

Result<double> DissimilarityMatrix::MaxAbsDifference(
    const DissimilarityMatrix& other) const {
  if (other.num_objects_ != num_objects_) {
    return Status::InvalidArgument("matrices disagree on object count");
  }
  double max = 0.0;
  for (size_t idx = 0; idx < cells_.size(); ++idx) {
    max = std::max(max, std::fabs(cells_[idx] - other.cells_[idx]));
  }
  return max;
}

Result<DissimilarityMatrix> DissimilarityMatrix::FromPacked(
    size_t num_objects, std::vector<double> cells) {
  size_t expected = num_objects < 2 ? 0 : num_objects * (num_objects - 1) / 2;
  if (cells.size() != expected) {
    return Status::InvalidArgument(
        "packed cell count " + std::to_string(cells.size()) +
        " does not match " + std::to_string(num_objects) + " objects");
  }
  DissimilarityMatrix matrix(num_objects);
  matrix.cells_ = std::move(cells);
  return matrix;
}

std::string DissimilarityMatrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < num_objects_; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, at(i, j));
      out += buf;
      out += (j == i) ? "\n" : " ";
    }
  }
  return out;
}

}  // namespace ppc
