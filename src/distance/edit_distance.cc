#include "distance/edit_distance.h"

#include <algorithm>

namespace ppc {

CharComparisonMatrix::CharComparisonMatrix(size_t source_length,
                                           size_t target_length)
    : source_length_(source_length),
      target_length_(target_length),
      cells_(source_length * target_length, 0) {}

CharComparisonMatrix CharComparisonMatrix::FromStrings(
    const std::string& source, const std::string& target) {
  CharComparisonMatrix ccm(source.size(), target.size());
  for (size_t i = 0; i < source.size(); ++i) {
    for (size_t j = 0; j < target.size(); ++j) {
      ccm.set(i, j, source[i] == target[j] ? 0 : 1);
    }
  }
  return ccm;
}

size_t EditDistance::Compute(const std::string& source,
                             const std::string& target) {
  const size_t n = source.size();
  const size_t m = target.size();
  if (n == 0) return m;
  if (m == 0) return n;

  std::vector<size_t> previous(m + 1);
  std::vector<size_t> current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    current[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t substitution =
          previous[j - 1] + (source[i - 1] == target[j - 1] ? 0 : 1);
      size_t deletion = previous[j] + 1;
      size_t insertion = current[j - 1] + 1;
      current[j] = std::min({substitution, deletion, insertion});
    }
    std::swap(previous, current);
  }
  return previous[m];
}

size_t EditDistance::ComputeFromCcm(const CharComparisonMatrix& ccm) {
  const size_t n = ccm.source_length();
  const size_t m = ccm.target_length();
  if (n == 0) return m;
  if (m == 0) return n;

  std::vector<size_t> previous(m + 1);
  std::vector<size_t> current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    current[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t substitution = previous[j - 1] + (ccm.at(i - 1, j - 1) ? 1 : 0);
      size_t deletion = previous[j] + 1;
      size_t insertion = current[j - 1] + 1;
      current[j] = std::min({substitution, deletion, insertion});
    }
    std::swap(previous, current);
  }
  return previous[m];
}

size_t EditDistance::ComputeBanded(const std::string& source,
                                   const std::string& target, size_t band) {
  const size_t n = source.size();
  const size_t m = target.size();
  const size_t length_gap = n > m ? n - m : m - n;
  if (length_gap > band) return band + 1;
  if (n == 0) return m;
  if (m == 0) return n;

  const size_t kInfinity = n + m + 1;
  std::vector<size_t> previous(m + 1, kInfinity);
  std::vector<size_t> current(m + 1, kInfinity);
  for (size_t j = 0; j <= std::min(m, band); ++j) previous[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    // Only columns with |i - j| <= band can hold values <= band.
    size_t j_lo = i > band ? i - band : 1;
    size_t j_hi = std::min(m, i + band);
    std::fill(current.begin(), current.end(), kInfinity);
    if (j_lo == 1 && i <= band) current[0] = i;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      size_t substitution =
          previous[j - 1] + (source[i - 1] == target[j - 1] ? 0 : 1);
      size_t deletion = previous[j] >= kInfinity ? kInfinity : previous[j] + 1;
      size_t insertion =
          current[j - 1] >= kInfinity ? kInfinity : current[j - 1] + 1;
      current[j] = std::min({substitution, deletion, insertion});
    }
    std::swap(previous, current);
  }
  return std::min(previous[m], band + 1);
}

}  // namespace ppc
