#ifndef PPC_COMMON_CANCELLATION_H_
#define PPC_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace ppc {

/// Cooperative cancellation + deadline handle shared by everything that
/// can block on a session's behalf: the schedule executors check it
/// between steps, blocking receives poll it while waiting, and
/// `SessionRegistry::CancelSession` trips it to reclaim a wedged worker.
///
/// Semantics:
///   * `Cancel(reason)` is sticky and first-caller-wins: the first
///     non-OK reason is the one every later `Check()` reports.
///   * `ArmDeadline(ms)` sets an absolute steady-clock deadline `ms`
///     from now (0 = no deadline). Once it passes, `Check()` returns
///     `kDeadlineExceeded` — the token does not need a watcher thread;
///     pollers discover expiry themselves.
///   * `Check()` is cheap on the happy path (two relaxed atomic loads)
///     so it is safe to call per schedule step and per receive wait
///     slice.
///
/// Thread-safe. The token is plain shared state: the owner keeps it
/// alive for the duration of the run (parties and transports only hold
/// `const CancelToken*`).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms an absolute deadline `deadline_ms` milliseconds from now.
  /// `deadline_ms == 0` means "no deadline" and leaves the token as-is.
  void ArmDeadline(uint64_t deadline_ms) {
    if (deadline_ms == 0) return;
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(deadline_ms));
  }

  /// Sets an absolute steady-clock deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }

  bool HasDeadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != kNoDeadline;
  }

  /// The armed deadline; only meaningful when `HasDeadline()`.
  std::chrono::steady_clock::time_point deadline() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            deadline_ns_.load(std::memory_order_acquire)));
  }

  /// Trips the token. The first non-OK `reason` wins; later calls are
  /// no-ops. An OK `reason` is coerced to a generic cancellation error so
  /// a tripped token can never report success.
  void Cancel(Status reason) EXCLUDES(reason_mutex_) {
    if (reason.ok()) {
      reason = Status::DeadlineExceeded("cancelled");
    }
    {
      MutexLock lock(reason_mutex_);
      if (!reason_set_) {
        reason_ = std::move(reason);
        reason_set_ = true;
      }
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while the token is untripped and within deadline; the sticky
  /// cancellation reason once `Cancel` ran; `kDeadlineExceeded` once the
  /// armed deadline passed.
  Status Check() const EXCLUDES(reason_mutex_) {
    if (cancelled_.load(std::memory_order_acquire)) {
      MutexLock lock(reason_mutex_);
      return reason_;
    }
    const int64_t deadline_ns = deadline_ns_.load(std::memory_order_acquire);
    if (deadline_ns != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline_ns) {
      return Status::DeadlineExceeded("session deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  mutable Mutex reason_mutex_;
  Status reason_ GUARDED_BY(reason_mutex_);
  bool reason_set_ GUARDED_BY(reason_mutex_) = false;
};

}  // namespace ppc

#endif  // PPC_COMMON_CANCELLATION_H_
