#include "common/serde.h"

namespace ppc {

namespace {
constexpr uint32_t kMaxVectorLength = 1u << 28;  // 256M elements: sanity cap.
}  // namespace

void ByteWriter::WriteU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  buffer_.append(bytes, 4);
}

void ByteWriter::WriteU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  buffer_.append(bytes, 8);
}

void ByteWriter::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(const std::string& bytes) {
  WriteBytes(bytes.data(), bytes.size());
}

void ByteWriter::WriteBytes(const void* data, size_t length) {
  WriteU32(static_cast<uint32_t>(length));
  if (length > 0) {
    buffer_.append(static_cast<const char*>(data), length);
  }
}

void ByteWriter::WriteU64Vector(const std::vector<uint64_t>& values) {
  Reserve(4 + 8 * values.size());
  WriteU32(static_cast<uint32_t>(values.size()));
  for (uint64_t v : values) WriteU64(v);
}

void ByteWriter::WriteF64Vector(const std::vector<double>& values) {
  Reserve(4 + 8 * values.size());
  WriteU32(static_cast<uint32_t>(values.size()));
  for (double v : values) WriteF64(v);
}

void ByteWriter::WriteBytesVector(const std::vector<std::string>& values) {
  size_t total = 4;
  for (const std::string& v : values) total += 4 + v.size();
  Reserve(total);
  WriteU32(static_cast<uint32_t>(values.size()));
  for (const std::string& v : values) WriteBytes(v);
}

Status ByteReader::Need(size_t n) const {
  if (remaining() < n) {
    return Status::DataLoss("truncated message: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::ReadU8() {
  PPC_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::ReadU32() {
  PPC_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  PPC_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  PPC_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::ReadF64() {
  PPC_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadBytes() {
  PPC_ASSIGN_OR_RETURN(std::string_view view, ReadBytesView());
  // Construct the result straight from the wire bytes — no intermediate
  // substring temporary.
  return std::string(view);
}

Result<std::string_view> ByteReader::ReadBytesView() {
  PPC_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  PPC_RETURN_IF_ERROR(Need(n));
  std::string_view view(data_.data() + pos_, n);
  pos_ += n;
  return view;
}

Result<std::vector<uint64_t>> ByteReader::ReadU64Vector() {
  PPC_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  if (n > kMaxVectorLength) {
    return Status::DataLoss("vector length " + std::to_string(n) +
                            " exceeds sanity cap");
  }
  PPC_RETURN_IF_ERROR(Need(size_t{n} * 8));
  std::vector<uint64_t> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PPC_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    out.push_back(v);
  }
  return out;
}

Result<std::vector<double>> ByteReader::ReadF64Vector() {
  PPC_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  if (n > kMaxVectorLength) {
    return Status::DataLoss("vector length " + std::to_string(n) +
                            " exceeds sanity cap");
  }
  PPC_RETURN_IF_ERROR(Need(size_t{n} * 8));
  std::vector<double> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PPC_ASSIGN_OR_RETURN(double v, ReadF64());
    out.push_back(v);
  }
  return out;
}

Result<std::vector<std::string>> ByteReader::ReadBytesVector() {
  PPC_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  if (n > kMaxVectorLength) {
    return Status::DataLoss("vector length " + std::to_string(n) +
                            " exceeds sanity cap");
  }
  std::vector<std::string> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PPC_ASSIGN_OR_RETURN(std::string v, ReadBytes());
    out.push_back(std::move(v));
  }
  return out;
}

Status ByteReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::DataLoss("trailing bytes after message: " +
                            std::to_string(remaining()));
  }
  return Status::OK();
}

}  // namespace ppc
