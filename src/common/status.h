#ifndef PPC_COMMON_STATUS_H_
#define PPC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ppc {

/// Error category carried by a `Status`.
///
/// The library never throws; every fallible operation returns a `Status`
/// (or a `Result<T>`, see result.h) in the style of RocksDB/Arrow.
enum class StatusCode {
  kOk = 0,
  /// Caller passed an argument that violates the function contract.
  kInvalidArgument,
  /// A referenced entity (party, attribute, object id, ...) does not exist.
  kNotFound,
  /// An entity that must be unique already exists.
  kAlreadyExists,
  /// The operation is not valid in the current state of the object.
  kFailedPrecondition,
  /// Decoding ran off the end of a buffer or found malformed bytes.
  kDataLoss,
  /// A protocol participant sent a message that violates the protocol.
  kProtocolViolation,
  /// The peer could not prove it is authorized (e.g. failed the transport
  /// connection-authentication handshake).
  kPermissionDenied,
  /// Arithmetic would overflow the representable range.
  kOutOfRange,
  /// A finite resource is used up (e.g. a channel's nonce space) and the
  /// operation can never succeed again on this object.
  kResourceExhausted,
  /// The requested feature is recognized but not implemented.
  kUnimplemented,
  /// Catch-all for internal invariant failures.
  kInternal,
  /// A deadline or cancellation cut the operation short: the work did not
  /// finish before the caller's time budget expired (or the session was
  /// cancelled). Retrying with a larger budget may succeed.
  kDeadlineExceeded,
  /// The peer (or its connection) is gone or unresponsive right now: a
  /// blocking receive saw nothing arrive within the transport timeout, or
  /// a send hit a dead connection. Distinct from kDeadlineExceeded — the
  /// caller's own budget may still have room to retry or re-dial.
  kUnavailable,
};

/// Returns the canonical spelling of `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Value type describing the outcome of an operation.
///
/// A default-constructed `Status` is OK. Statuses are cheap to copy (an OK
/// status stores no message). Typical use:
///
/// ```
/// Status s = matrix.Append(row);
/// if (!s.ok()) return s;
/// ```
///
/// `[[nodiscard]]`: a dropped Status is a swallowed failure, so every
/// call returning one must be checked, propagated, or explicitly
/// discarded with a `(void)` cast carrying a reason comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ProtocolViolation(std::string msg) {
    return Status(StatusCode::kProtocolViolation, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk for success).
  StatusCode code() const { return code_; }

  /// The human-readable message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ppc

/// Propagates an error status to the caller; evaluates `expr` exactly once.
#define PPC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ppc::Status _ppc_status = (expr);          \
    if (!_ppc_status.ok()) return _ppc_status;   \
  } while (false)

#endif  // PPC_COMMON_STATUS_H_
