#ifndef PPC_COMMON_THREAD_POOL_H_
#define PPC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace ppc {

/// Fixed-size worker pool for the concurrent protocol engine.
///
/// Tasks submitted here must be self-contained units that never wait on
/// other *queued* tasks (the parallel session schedules whole protocol
/// rounds per task, so every in-task Receive is preceded by the matching
/// Send on the same thread). Under that contract the pool cannot deadlock.
///
/// For data-parallel inner loops use the static `ParallelFor`, which spawns
/// transient threads instead of borrowing pool workers — a pool task that
/// parked itself waiting for queued subtasks could deadlock the pool,
/// transient threads cannot.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished.
  void Wait() EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs `body(begin, end)` over a partition of [0, n) across up to
  /// `num_threads` transient threads (the caller executes the first chunk).
  /// Chunk boundaries depend only on (n, num_threads), so any computation
  /// whose chunks are order-independent is bit-identical to the sequential
  /// run. Falls back to a single inline call when `num_threads <= 1`,
  /// `n <= 1`, or `n < min_items` (thread spawn costs more than tiny loops
  /// save).
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t, size_t)>& body,
                          size_t min_items = 2048);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  size_t in_flight_ GUARDED_BY(mutex_) = 0;  // Queued + running tasks.
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Runs every task in `tasks` through a pool of `num_threads` workers and
/// returns the first non-OK status in task order (all tasks run to
/// completion regardless). With `num_threads <= 1` the tasks run inline,
/// sequentially — the deterministic reference schedule.
Status RunStatusTasks(std::vector<std::function<Status()>> tasks,
                      size_t num_threads);

/// Ready-set execution of a dependency graph: task `i` starts only after
/// every task in `deps[i]` completed successfully. Dependencies must point
/// strictly backward (`deps[i]` < i), which both guarantees acyclicity and
/// makes index order a valid topological order.
///
/// With `num_threads <= 1` tasks run inline in index order (deterministic;
/// the first failure is returned immediately). With more threads, workers
/// repeatedly pick the lowest-index ready task; tasks must not block on
/// other *queued* tasks (the schedule graph's data edges are what
/// discharges that obligation for protocol receives). On a failure no new
/// task is started — in-flight tasks finish, the rest are skipped — and
/// the recorded failure with the smallest task index is returned.
Status RunDagTasks(std::vector<std::function<Status()>> tasks,
                   const std::vector<std::vector<uint32_t>>& deps,
                   size_t num_threads);

}  // namespace ppc

#endif  // PPC_COMMON_THREAD_POOL_H_
