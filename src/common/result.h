#ifndef PPC_COMMON_RESULT_H_
#define PPC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ppc {

/// Either a value of type `T` or an error `Status` (never both).
///
/// Analogous to `arrow::Result` / `absl::StatusOr`. Accessing the value of
/// an errored result is a programming error guarded by `assert`.
///
/// ```
/// Result<DataMatrix> m = CsvReader::ReadFile(path, schema);
/// if (!m.ok()) return m.status();
/// Use(m.value());
/// ```
///
/// `[[nodiscard]]` for the same reason as `Status`: dropping a Result
/// drops the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is forbidden.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the result. Requires `ok()`.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

}  // namespace ppc

/// Assigns the value of a `Result<T>` expression to `lhs`, or propagates the
/// error to the caller. `lhs` may declare a new variable:
///   PPC_ASSIGN_OR_RETURN(auto matrix, BuildMatrix());
#define PPC_ASSIGN_OR_RETURN(lhs, expr)                     \
  PPC_ASSIGN_OR_RETURN_IMPL_(                               \
      PPC_STATUS_CONCAT_(_ppc_result, __LINE__), lhs, expr)

#define PPC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).TakeValue()

#define PPC_STATUS_CONCAT_(a, b) PPC_STATUS_CONCAT_IMPL_(a, b)
#define PPC_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PPC_COMMON_RESULT_H_
