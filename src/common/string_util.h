#ifndef PPC_COMMON_STRING_UTIL_H_
#define PPC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppc {

/// Splits `input` on `delimiter`, keeping empty fields. "a,,b" -> {a,"",b}.
std::vector<std::string> SplitString(const std::string& input, char delimiter);

/// Joins `parts` with `delimiter`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& delimiter);

/// Removes ASCII whitespace from both ends.
std::string TrimString(const std::string& input);

/// Lowercases ASCII characters.
std::string ToLowerAscii(const std::string& input);

/// Hex-encodes bytes, two lowercase digits per byte.
std::string HexEncode(const std::string& bytes);

/// Formats a double with `digits` significant fraction digits, trimming
/// trailing zeros ("1.25", "3", "0.5").
std::string FormatDouble(double value, int digits = 6);

/// Whole-string parses with strtoll/strtod acceptance rules (leading
/// whitespace, sign, hex floats, and nan/inf are valid) but nothing
/// may follow the number, empty input fails, and out-of-range input
/// (ERANGE, over- or underflow) fails. Return false on failure and
/// leave `*out` untouched. Callers needing finite values must check
/// std::isfinite on top.
bool ParseInt64(const std::string& text, int64_t* out);
bool ParseDouble(const std::string& text, double* out);

}  // namespace ppc

#endif  // PPC_COMMON_STRING_UTIL_H_
