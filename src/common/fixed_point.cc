#include "common/fixed_point.h"

#include <cmath>
#include <string>

namespace ppc {

namespace {
// 2^52: differences of two encoded values fit in int64 with headroom and
// remain exactly representable as doubles on decode.
constexpr double kMaxEncodedMagnitude = 4503599627370496.0;
}  // namespace

Result<FixedPointCodec> FixedPointCodec::Create(int decimal_digits) {
  if (decimal_digits < 0 || decimal_digits > 15) {
    return Status::InvalidArgument(
        "decimal_digits must be in [0, 15], got " +
        std::to_string(decimal_digits));
  }
  return FixedPointCodec(decimal_digits, std::pow(10.0, decimal_digits));
}

Result<int64_t> FixedPointCodec::Encode(double value) const {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("cannot encode non-finite value");
  }
  double scaled = value * scale_;
  if (std::fabs(scaled) > kMaxEncodedMagnitude) {
    return Status::OutOfRange(
        "value " + std::to_string(value) + " exceeds fixed-point range at " +
        std::to_string(decimal_digits_) + " decimal digits");
  }
  return static_cast<int64_t>(std::llround(scaled));
}

}  // namespace ppc
