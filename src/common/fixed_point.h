#ifndef PPC_COMMON_FIXED_POINT_H_
#define PPC_COMMON_FIXED_POINT_H_

#include <cstdint>

#include "common/result.h"

namespace ppc {

/// Converts real-valued attributes to and from a fixed-point integer
/// representation for the numeric masking protocol.
///
/// The paper's numeric protocol is exact over the integers: masking and
/// unmasking cancel without rounding. Masking IEEE doubles directly would
/// lose low-order bits when a large random mask is added, so real attributes
/// are scaled by `10^decimal_digits` and rounded to the nearest `int64_t`
/// before entering the protocol (paper Sec. 4.1: "for real values, only the
/// data type of the vector ... needs to be changed"; see DESIGN.md
/// substitution table).
class FixedPointCodec {
 public:
  /// Creates a codec preserving `decimal_digits` digits after the decimal
  /// point. `decimal_digits` must be in [0, 15].
  static Result<FixedPointCodec> Create(int decimal_digits);

  /// Encodes `value` as round(value * 10^digits). Fails with kOutOfRange if
  /// the scaled magnitude exceeds the guard limit 2^52 (chosen so that any
  /// pairwise difference of encoded values stays exactly representable).
  Result<int64_t> Encode(double value) const;

  /// Decodes an encoded value (or an encoded absolute difference) back to a
  /// double.
  double Decode(int64_t encoded) const { return encoded * inverse_scale_; }

  /// Number of preserved decimal digits.
  int decimal_digits() const { return decimal_digits_; }

  /// The multiplicative scale 10^decimal_digits.
  double scale() const { return scale_; }

 private:
  FixedPointCodec(int decimal_digits, double scale)
      : decimal_digits_(decimal_digits),
        scale_(scale),
        inverse_scale_(1.0 / scale) {}

  int decimal_digits_;
  double scale_;
  double inverse_scale_;
};

}  // namespace ppc

#endif  // PPC_COMMON_FIXED_POINT_H_
