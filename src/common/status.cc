#include "common/status.h"

namespace ppc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kProtocolViolation:
      return "ProtocolViolation";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ppc
