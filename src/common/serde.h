#ifndef PPC_COMMON_SERDE_H_
#define PPC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ppc {

/// Append-only little-endian binary encoder used for protocol messages.
///
/// All protocol payloads in `src/core` are serialized through this writer so
/// that the network layer's byte accounting reflects exactly what a real
/// wire deployment would transfer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-sizes the buffer for `additional` more bytes. The protocol's hot
  /// encoders know their payload size up front (matrix/vector payloads),
  /// so one reservation replaces the append-path's geometric regrowth.
  void Reserve(size_t additional) {
    buffer_.reserve(buffer_.size() + additional);
  }

  /// Appends a single byte.
  void WriteU8(uint8_t v) { buffer_.push_back(v); }

  /// Appends a 32-bit unsigned integer, little endian.
  void WriteU32(uint32_t v);

  /// Appends a 64-bit unsigned integer, little endian.
  void WriteU64(uint64_t v);

  /// Appends a 64-bit signed integer (two's complement, little endian).
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

  /// Appends an IEEE-754 double by bit pattern.
  void WriteF64(double v);

  /// Appends a length-prefixed byte string (u32 length + raw bytes).
  void WriteBytes(const std::string& bytes);

  /// As `WriteBytes`, straight from a raw buffer — no intermediate
  /// std::string for callers whose bytes live in another container.
  void WriteBytes(const void* data, size_t length);

  /// Appends a length-prefixed vector of u64 values.
  void WriteU64Vector(const std::vector<uint64_t>& values);

  /// Appends a length-prefixed vector of doubles.
  void WriteF64Vector(const std::vector<double>& values);

  /// Appends a length-prefixed vector of length-prefixed byte strings.
  void WriteBytesVector(const std::vector<std::string>& values);

  /// The serialized bytes accumulated so far.
  const std::string& bytes() const { return buffer_; }

  /// Moves the accumulated bytes out of the writer.
  std::string TakeBytes() { return std::move(buffer_); }

  /// Number of bytes written so far.
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Sequential decoder matching `ByteWriter`'s encoding.
///
/// Every read checks remaining length and returns `kDataLoss` on truncated
/// or malformed input, so protocol parties can safely decode messages from
/// untrusted peers.
class ByteReader {
 public:
  /// Wraps `data`; the reader does not own the bytes, the caller must keep
  /// them alive for the reader's lifetime.
  explicit ByteReader(const std::string& data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadBytes();

  /// Zero-copy variant of `ReadBytes`: the view aliases the reader's
  /// underlying buffer, valid only while that buffer outlives it. For
  /// decoders that inspect or compare a field without keeping it.
  Result<std::string_view> ReadBytesView();
  Result<std::vector<uint64_t>> ReadU64Vector();
  Result<std::vector<double>> ReadF64Vector();
  Result<std::vector<std::string>> ReadBytesVector();

  /// Number of bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

  /// True iff every byte has been consumed.
  bool AtEnd() const { return remaining() == 0; }

  /// Returns kDataLoss unless the reader consumed the whole buffer.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace ppc

#endif  // PPC_COMMON_SERDE_H_
