#include "common/thread_pool.h"

#include <algorithm>
#include <set>

namespace ppc {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t, size_t)>& body,
                             size_t min_items) {
  if (n == 0) return;
  size_t chunks = std::min(std::max<size_t>(1, num_threads), n);
  if (chunks == 1 || n < min_items) {
    body(0, n);
    return;
  }
  // Contiguous chunks of near-equal size; the first (n % chunks) chunks get
  // one extra item. The caller runs chunk 0 while transient threads run the
  // rest.
  std::vector<std::thread> threads;
  threads.reserve(chunks - 1);
  size_t base = n / chunks, extra = n % chunks;
  size_t begin = base + (extra > 0 ? 1 : 0);  // Chunk 0 is the caller's.
  for (size_t c = 1; c < chunks; ++c) {
    size_t size = base + (c < extra ? 1 : 0);
    threads.emplace_back(
        [&body, begin, size] { body(begin, begin + size); });
    begin += size;
  }
  body(0, base + (extra > 0 ? 1 : 0));
  for (std::thread& t : threads) t.join();
}

Status RunDagTasks(std::vector<std::function<Status()>> tasks,
                   const std::vector<std::vector<uint32_t>>& deps,
                   size_t num_threads) {
  const size_t n = tasks.size();
  if (deps.size() != n) {
    return Status::InvalidArgument("RunDagTasks: tasks/deps size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t dep : deps[i]) {
      if (dep >= i) {
        return Status::InvalidArgument(
            "RunDagTasks: dependencies must point strictly backward");
      }
    }
  }
  if (n == 0) return Status::OK();

  if (num_threads <= 1) {
    // Backward-pointing deps make index order a topological order, so the
    // inline run needs no bookkeeping at all.
    for (size_t i = 0; i < n; ++i) {
      PPC_RETURN_IF_ERROR(tasks[i]());
    }
    return Status::OK();
  }

  std::vector<size_t> indegree(n, 0);
  std::vector<std::vector<uint32_t>> children(n);
  for (size_t i = 0; i < n; ++i) {
    indegree[i] = deps[i].size();
    for (uint32_t dep : deps[i]) {
      children[dep].push_back(static_cast<uint32_t>(i));
    }
  }

  // The scheduler state below is all guarded by `mutex` (locals cannot
  // carry GUARDED_BY, but every access happens inside the MutexLock
  // scope or between its Lock/Unlock pairs).
  Mutex mutex;
  CondVar wake;
  std::set<uint32_t> ready;  // Ordered: workers pick the lowest index.
  size_t outstanding = n;
  bool aborted = false;
  size_t first_failed = n;
  Status failure = Status::OK();
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.insert(static_cast<uint32_t>(i));
  }

  auto worker = [&] {
    MutexLock lock(mutex);
    for (;;) {
      while (!aborted && outstanding != 0 && ready.empty()) wake.Wait(mutex);
      if (aborted || outstanding == 0) return;
      uint32_t id = *ready.begin();
      ready.erase(ready.begin());
      lock.Unlock();
      Status status = tasks[id]();
      lock.Lock();
      if (!status.ok()) {
        if (id < first_failed) {
          first_failed = id;
          failure = std::move(status);
        }
        aborted = true;  // Skip everything not yet started.
      }
      --outstanding;
      for (uint32_t child : children[id]) {
        if (--indegree[child] == 0) ready.insert(child);
      }
      wake.NotifyAll();
    }
  };

  std::vector<std::thread> threads;
  const size_t worker_count = std::min(num_threads, n);
  threads.reserve(worker_count);
  for (size_t t = 0; t < worker_count; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return failure;
}

Status RunStatusTasks(std::vector<std::function<Status()>> tasks,
                      size_t num_threads) {
  std::vector<Status> statuses(tasks.size());
  if (num_threads <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) statuses[i] = tasks[i]();
  } else {
    ThreadPool pool(std::min(num_threads, tasks.size()));
    for (size_t i = 0; i < tasks.size(); ++i) {
      pool.Submit([&tasks, &statuses, i] { statuses[i] = tasks[i](); });
    }
    pool.Wait();
  }
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace ppc
