#include "common/thread_pool.h"

#include <algorithm>

namespace ppc {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t, size_t)>& body,
                             size_t min_items) {
  if (n == 0) return;
  size_t chunks = std::min(std::max<size_t>(1, num_threads), n);
  if (chunks == 1 || n < min_items) {
    body(0, n);
    return;
  }
  // Contiguous chunks of near-equal size; the first (n % chunks) chunks get
  // one extra item. The caller runs chunk 0 while transient threads run the
  // rest.
  std::vector<std::thread> threads;
  threads.reserve(chunks - 1);
  size_t base = n / chunks, extra = n % chunks;
  size_t begin = base + (extra > 0 ? 1 : 0);  // Chunk 0 is the caller's.
  for (size_t c = 1; c < chunks; ++c) {
    size_t size = base + (c < extra ? 1 : 0);
    threads.emplace_back(
        [&body, begin, size] { body(begin, begin + size); });
    begin += size;
  }
  body(0, base + (extra > 0 ? 1 : 0));
  for (std::thread& t : threads) t.join();
}

Status RunStatusTasks(std::vector<std::function<Status()>> tasks,
                      size_t num_threads) {
  std::vector<Status> statuses(tasks.size());
  if (num_threads <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) statuses[i] = tasks[i]();
  } else {
    ThreadPool pool(std::min(num_threads, tasks.size()));
    for (size_t i = 0; i < tasks.size(); ++i) {
      pool.Submit([&tasks, &statuses, i] { statuses[i] = tasks[i](); });
    }
    pool.Wait();
  }
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace ppc
