#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ppc {

std::vector<std::string> SplitString(const std::string& input,
                                     char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delimiter;
    out += parts[i];
  }
  return out;
}

std::string TrimString(const std::string& input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(const std::string& input) {
  std::string out = input;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string HexEncode(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace ppc
