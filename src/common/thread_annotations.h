#ifndef PPC_COMMON_THREAD_ANNOTATIONS_H_
#define PPC_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Compile-time concurrency contracts.
///
/// This header is the project's single bridge between locking *practice*
/// and locking *proof*. It provides
///
///   1. the Clang capability-analysis attribute macros (`GUARDED_BY`,
///      `REQUIRES`, `EXCLUDES`, ...) in the style popularized by Abseil's
///      `absl/base/thread_annotations.h`, and
///   2. `ppc::Mutex` / `ppc::MutexLock` / `ppc::CondVar` — thin,
///      zero-overhead wrappers over the std primitives that carry those
///      attributes, so `clang++ -Wthread-safety -Werror=thread-safety`
///      can prove lock discipline on every build.
///
/// ## The contract
///
/// Every mutex in `src/` is a `ppc::Mutex` (the project linter,
/// `tools/lint/check_source.py`, rejects raw `std::mutex` & friends
/// outside this header), and every piece of state it protects is marked
/// `GUARDED_BY(that_mutex)`. Under Clang the analysis then enforces, at
/// compile time, on every translation unit:
///
///   * guarded state is only read or written while its mutex is held
///     (`GUARDED_BY` / `PT_GUARDED_BY`);
///   * `...Locked()` helpers are only called with the right mutex held
///     (`REQUIRES`), and lock-taking methods are never re-entered while
///     that mutex is already held — the self-deadlock class (`EXCLUDES`);
///   * scoped locks cannot leak: `MutexLock` is a `SCOPED_CAPABILITY`,
///     so forgetting that a path released (or failed to release) a lock
///     is a compile error, not a TSan roll of the dice.
///
/// GCC (and any compiler without `thread_safety` attributes) sees plain
/// `std::mutex` semantics: the macros expand to nothing and the wrappers
/// inline away. Runtime behavior is identical across compilers.
///
/// ## What the analysis cannot see
///
/// The analysis is per-function and lock-based. It does not model
///   * happens-before established by `std::thread::join` / atomics
///     (e.g. `SessionRegistry::Entry::result`),
///   * thread confinement (e.g. `EventLoop`'s loop-thread-only state),
///   * condition-variable wakeup correctness (it checks that `Wait` is
///     called with the mutex held, not that the predicate loop is right).
/// Such state keeps an explanatory comment instead of an annotation, and
/// TSan remains the dynamic backstop for it.
///
/// ## Idioms
///
/// ```
/// class Account {
///  public:
///   void Deposit(int amount) EXCLUDES(mutex_) {
///     MutexLock lock(mutex_);
///     balance_ += amount;  // OK: mutex_ held.
///   }
///   int BalanceLocked() const REQUIRES(mutex_) { return balance_; }
///  private:
///   mutable ppc::Mutex mutex_;
///   int balance_ GUARDED_BY(mutex_) = 0;
/// };
/// ```
///
/// Condition waits are written as explicit predicate loops in the caller
/// (not as predicate lambdas passed to `CondVar`), so the analysis can
/// see that the guarded predicate state is read under the lock:
///
/// ```
/// MutexLock lock(mutex_);
/// while (queue_.empty() && !stopping_) not_empty_.Wait(mutex_);
/// ```

// -- Attribute macros -------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define PPC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PPC_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CAPABILITY(x) PPC_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY PPC_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define GUARDED_BY(x) PPC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define PT_GUARDED_BY(x) PPC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held by the caller
/// (and still held on return).
#define REQUIRES(...) \
  PPC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PPC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (constructor of a scoped
/// lock, or Lock()).
#define ACQUIRE(...) PPC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PPC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (destructor of a scoped
/// lock, or Unlock()).
#define RELEASE(...) PPC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PPC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value meaning "acquired".
#define TRY_ACQUIRE(...) \
  PPC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held — the
/// annotation that turns the self-deadlock (re-entering a lock-taking
/// method under its own lock) into a compile error.
#define EXCLUDES(...) PPC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the capability
/// protecting its result.
#define RETURN_CAPABILITY(x) PPC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining which out-of-band mechanism (join,
/// thread confinement, ...) provides the synchronization.
#define NO_THREAD_SAFETY_ANALYSIS \
  PPC_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Capability ordering documentation: `x` must be acquired before/after
/// the annotated mutex.
#define ACQUIRED_BEFORE(...) \
  PPC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  PPC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

namespace ppc {

class CondVar;

/// Annotated exclusive mutex. Same storage and cost as the `std::mutex`
/// it wraps; exists so the capability attributes have a class to hang
/// off (the std type cannot be annotated).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a `ppc::Mutex`. A scoped capability: the analysis
/// proves it is released on every path out of the scope. `Unlock`/`Lock`
/// support the drop-the-lock-around-work pattern (e.g. running a task
/// between scheduler bookkeeping sections) without giving up the proof.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mutex_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (to run work that must not hold it).
  void Unlock() RELEASE() {
    mutex_.Unlock();
    held_ = false;
  }

  /// Re-acquires after `Unlock`.
  void Lock() ACQUIRE() {
    mutex_.Lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Annotated condition variable for `ppc::Mutex`.
///
/// Deliberately has no predicate-lambda overloads: the analysis cannot
/// see into a lambda that the attribute system has not annotated, so
/// predicates over guarded state would dodge the proof. Callers write
/// the standard explicit loop instead (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, waits, and re-acquires it. `mutex`
  /// must be the one guarding the predicate state, held by the caller.
  void Wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's scope still owns the mutex.
  }

  /// As `Wait`, giving up at `deadline`.
  std::cv_status WaitUntil(Mutex& mutex,
                           std::chrono::steady_clock::time_point deadline)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ppc

#endif  // PPC_COMMON_THREAD_ANNOTATIONS_H_
