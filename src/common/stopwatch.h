#ifndef PPC_COMMON_STOPWATCH_H_
#define PPC_COMMON_STOPWATCH_H_

#include <chrono>

namespace ppc {

/// Monotonic wall-clock stopwatch used by benchmarks and examples.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppc

#endif  // PPC_COMMON_STOPWATCH_H_
