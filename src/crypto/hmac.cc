#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace ppc {

std::string HmacSha256::Mac(const std::string& key,
                            const std::string& message) {
  constexpr size_t kBlockSize = 64;
  std::string k = key;
  if (k.size() > kBlockSize) k = Sha256::Hash(k);
  k.resize(kBlockSize, '\0');

  std::string inner_pad(kBlockSize, '\0');
  std::string outer_pad(kBlockSize, '\0');
  for (size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = static_cast<char>(k[i] ^ 0x36);
    outer_pad[i] = static_cast<char>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(inner_pad);
  inner.Update(message);
  std::string inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(outer_pad);
  outer.Update(inner_digest);
  return outer.Finish();
}

bool HmacSha256::Verify(const std::string& expected,
                        const std::string& actual) {
  if (expected.size() != actual.size()) return false;
  unsigned char diff = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<unsigned char>(expected[i]) ^
            static_cast<unsigned char>(actual[i]);
  }
  return diff == 0;
}

}  // namespace ppc
