#include "crypto/hmac.h"

#include <array>

#include "crypto/sha256.h"

namespace ppc {

HmacSha256::Key::Key(const std::string& key) {
  constexpr size_t kBlockSize = 64;
  std::string k = key;
  if (k.size() > kBlockSize) k = Sha256::Hash(k);
  k.resize(kBlockSize, '\0');

  std::array<uint8_t, kBlockSize> pad;
  for (size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
  }
  inner_midstate_.Update(pad.data(), kBlockSize);
  for (size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
  outer_midstate_.Update(pad.data(), kBlockSize);
}

std::string HmacSha256::Key::Mac(const std::string& message) const {
  Stream stream(*this);
  stream.Update(message);
  return stream.Finish();
}

std::string HmacSha256::Stream::Finish() {
  std::string inner_digest = inner_.Finish();
  outer_.Update(inner_digest);
  return outer_.Finish();
}

std::string HmacSha256::Mac(const std::string& key,
                            const std::string& message) {
  return Key(key).Mac(message);
}

bool HmacSha256::Verify(const std::string& expected,
                        const std::string& actual) {
  if (expected.size() != actual.size()) return false;
  unsigned char diff = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<unsigned char>(expected[i]) ^
            static_cast<unsigned char>(actual[i]);
  }
  return diff == 0;
}

}  // namespace ppc
