#ifndef PPC_CRYPTO_SHA256_H_
#define PPC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

namespace ppc {

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Used for key derivation (hashing Diffie-Hellman shared secrets into PRNG
/// seeds), HMAC, and the deterministic encryption of categorical values.
///
/// Copying a hasher clones its midstate: the copy continues the absorbed
/// prefix independently of the original. HMAC exploits this to precompute
/// the ipad/opad block per key and amortize it across messages
/// (`HmacSha256::Key`).
///
/// Two compression kernels compute the identical function: the portable
/// scalar rounds (the reference) and the SHA-NI instruction path, selected
/// at construction when the CPU supports it. Tests pin each kernel against
/// the FIPS 180-4 vectors.
class Sha256 {
 public:
  enum class Kernel : uint8_t {
    kAuto,    ///< Resolves to kShaNi when supported, else kScalar.
    kScalar,  ///< Portable reference rounds.
    kShaNi,   ///< Hardware SHA extensions.
  };

  explicit Sha256(Kernel kernel = Kernel::kAuto);
  Sha256(const Sha256&) = default;
  Sha256& operator=(const Sha256&) = default;

  /// True when the host CPU exposes the SHA-256 extensions.
  static bool ShaNiSupported();

  /// The kernel this hasher resolved to (never kAuto).
  Kernel kernel() const { return kernel_; }

  /// Clears all state, ready to hash a new message.
  void Reset();

  /// Absorbs `data`.
  void Update(const void* data, size_t length);
  void Update(const std::string& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object must be Reset()
  /// before reuse.
  std::string Finish();

  /// One-shot convenience: SHA-256 of `data` as 32 raw bytes.
  static std::string Hash(const std::string& data);

  /// One-shot digest rendered as lowercase hex (for tests/logging).
  static std::string HexDigest(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);
  void ProcessBlockScalar(const uint8_t* block);
#if defined(__x86_64__) || defined(__i386__)
  void ProcessBlockShaNi(const uint8_t* block);
#endif

  std::array<uint32_t, 8> state_;
  uint64_t bit_count_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_;
  Kernel kernel_;
};

}  // namespace ppc

#endif  // PPC_CRYPTO_SHA256_H_
