#ifndef PPC_CRYPTO_SHA256_H_
#define PPC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

namespace ppc {

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Used for key derivation (hashing Diffie-Hellman shared secrets into PRNG
/// seeds), HMAC, and the deterministic encryption of categorical values.
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Clears all state, ready to hash a new message.
  void Reset();

  /// Absorbs `data`.
  void Update(const void* data, size_t length);
  void Update(const std::string& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object must be Reset()
  /// before reuse.
  std::string Finish();

  /// One-shot convenience: SHA-256 of `data` as 32 raw bytes.
  static std::string Hash(const std::string& data);

  /// One-shot digest rendered as lowercase hex (for tests/logging).
  static std::string HexDigest(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t bit_count_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_;
};

}  // namespace ppc

#endif  // PPC_CRYPTO_SHA256_H_
