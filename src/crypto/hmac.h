#ifndef PPC_CRYPTO_HMAC_H_
#define PPC_CRYPTO_HMAC_H_

#include <string>

#include "crypto/sha256.h"

namespace ppc {

/// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
///
/// Serves three roles in the system: message authentication on secure
/// channels, the PRF behind deterministic encryption of categorical values,
/// and labeled key derivation from Diffie-Hellman shared secrets.
class HmacSha256 {
 public:
  class Stream;

  /// A precomputed HMAC key: the SHA-256 midstates left after absorbing the
  /// ipad and opad blocks. Building one costs two compressions; every
  /// subsequent Mac()/Stream clones the midstates instead of re-deriving
  /// the pads, so the per-message fixed cost collapses to the two final
  /// compressions the construction fundamentally requires. Immutable after
  /// construction and safe to share across threads.
  class Key {
   public:
    explicit Key(const std::string& key);

    /// HMAC-SHA-256(key, message); returns 32 raw bytes.
    std::string Mac(const std::string& message) const;

   private:
    friend class Stream;
    Sha256 inner_midstate_;
    Sha256 outer_midstate_;
  };

  /// Incremental HMAC over a precomputed `Key`: absorb the message in
  /// pieces — no concatenation buffer — then `Finish`. One Stream per
  /// message. The Stream owns copies of both midstates, so it stays
  /// valid even if the Key it was built from is destroyed.
  class Stream {
   public:
    explicit Stream(const Key& key)
        : inner_(key.inner_midstate_), outer_(key.outer_midstate_) {}

    void Update(const void* data, size_t length) {
      inner_.Update(data, length);
    }
    void Update(const std::string& data) { inner_.Update(data); }

    /// Finalizes and returns the 32-byte MAC. One-shot: create a new
    /// Stream for the next message.
    std::string Finish();

   private:
    Sha256 inner_;
    Sha256 outer_;
  };

  /// Computes HMAC-SHA-256(key, message); returns 32 raw bytes. One-shot
  /// convenience over `Key`; amortize the key schedule with `Key` when
  /// MACing many messages under one key.
  static std::string Mac(const std::string& key, const std::string& message);

  /// Derives a labeled subkey: HMAC(key, label). Distinct labels yield
  /// independent keys from one master secret.
  static std::string DeriveKey(const std::string& master_key,
                               const std::string& label) {
    return Mac(master_key, "ppc-kdf:" + label);
  }

  /// Constant-time comparison of two MACs.
  static bool Verify(const std::string& expected, const std::string& actual);
};

}  // namespace ppc

#endif  // PPC_CRYPTO_HMAC_H_
