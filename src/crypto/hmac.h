#ifndef PPC_CRYPTO_HMAC_H_
#define PPC_CRYPTO_HMAC_H_

#include <string>

namespace ppc {

/// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
///
/// Serves three roles in the system: message authentication on secure
/// channels, the PRF behind deterministic encryption of categorical values,
/// and labeled key derivation from Diffie-Hellman shared secrets.
class HmacSha256 {
 public:
  /// Computes HMAC-SHA-256(key, message); returns 32 raw bytes.
  static std::string Mac(const std::string& key, const std::string& message);

  /// Derives a labeled subkey: HMAC(key, label). Distinct labels yield
  /// independent keys from one master secret.
  static std::string DeriveKey(const std::string& master_key,
                               const std::string& label) {
    return Mac(master_key, "ppc-kdf:" + label);
  }

  /// Constant-time comparison of two MACs.
  static bool Verify(const std::string& expected, const std::string& actual);
};

}  // namespace ppc

#endif  // PPC_CRYPTO_HMAC_H_
