#ifndef PPC_CRYPTO_BIGINT_H_
#define PPC_CRYPTO_BIGINT_H_

#include <gmpxx.h>

#include <cstdint>
#include <string>

#include "rng/prng.h"

namespace ppc {

/// Helpers bridging GMP big integers with the rest of the system.
namespace bigint {

/// Big-endian byte export (empty string encodes zero).
std::string ToBytes(const mpz_class& value);

/// Big-endian byte import.
mpz_class FromBytes(const std::string& bytes);

/// Uniform value in [0, bound) drawn from `prng` (rejection-free: draws
/// bits(bound)+64 bits and reduces; bias < 2^-64).
mpz_class RandomBelow(Prng* prng, const mpz_class& bound);

/// Random `bits`-bit integer with the top bit set.
mpz_class RandomBits(Prng* prng, size_t bits);

/// Smallest probable prime >= a random `bits`-bit starting point.
mpz_class RandomPrime(Prng* prng, size_t bits);

}  // namespace bigint
}  // namespace ppc

#endif  // PPC_CRYPTO_BIGINT_H_
