#include "crypto/det_encrypt.h"

#include "crypto/hmac.h"

namespace ppc {

std::string DeterministicEncryptor::Encrypt(const std::string& plaintext) const {
  std::string mac = HmacSha256::Mac(key_, "ppc-detenc:" + plaintext);
  mac.resize(kTokenLength);
  return mac;
}

}  // namespace ppc
