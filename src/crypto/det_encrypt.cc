#include "crypto/det_encrypt.h"

namespace ppc {

std::string DeterministicEncryptor::Encrypt(const std::string& plaintext) const {
  // Streamed over the precomputed key: no per-value concatenation buffer.
  HmacSha256::Stream stream(key_);
  stream.Update("ppc-detenc:");
  stream.Update(plaintext);
  std::string mac = stream.Finish();
  mac.resize(kTokenLength);
  return mac;
}

}  // namespace ppc
