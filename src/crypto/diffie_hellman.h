#ifndef PPC_CRYPTO_DIFFIE_HELLMAN_H_
#define PPC_CRYPTO_DIFFIE_HELLMAN_H_

#include <gmpxx.h>

#include <string>

#include "rng/prng.h"

namespace ppc {

/// Finite-field Diffie-Hellman key agreement over the RFC 3526 2048-bit
/// MODP group (generator 2).
///
/// The paper assumes each pair of parties "shares a secret number" used to
/// seed their common pseudo-random generator. In this implementation the
/// parties establish those secrets online: each sends a DH public value over
/// the simulated network, computes the shared group element, and derives the
/// seed as SHA-256(shared element ‖ context label). The third party observes
/// only public values, so the DHJ↔DHK seed stays hidden from it — the
/// property the protocol's sign-hiding relies on.
class DiffieHellman {
 public:
  /// A private/public key pair in the group.
  struct KeyPair {
    mpz_class private_key;
    mpz_class public_key;
  };

  /// Samples a key pair; `prng` supplies the private exponent (256 bits).
  static KeyPair Generate(Prng* prng);

  /// Computes the shared group element `peer_public ^ private mod p`.
  static mpz_class SharedElement(const mpz_class& private_key,
                                 const mpz_class& peer_public);

  /// Derives a 32-byte seed from the shared element and a context label.
  /// Both sides must pass the same label.
  static std::string DeriveSeed(const mpz_class& shared_element,
                                const std::string& label);

  /// The group modulus (RFC 3526, 2048-bit MODP).
  static const mpz_class& Modulus();

  /// The generator (2).
  static const mpz_class& Generator();
};

}  // namespace ppc

#endif  // PPC_CRYPTO_DIFFIE_HELLMAN_H_
