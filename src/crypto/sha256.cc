#include "crypto/sha256.h"

#include <cstring>

#include "common/string_util.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PPC_SHA_HAVE_X86 1
#endif

namespace ppc {

namespace {

constexpr std::array<uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

}  // namespace

bool Sha256::ShaNiSupported() {
#if defined(PPC_SHA_HAVE_X86)
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

Sha256::Sha256(Kernel kernel) {
  if (kernel == Kernel::kAuto) {
    kernel_ = ShaNiSupported() ? Kernel::kShaNi : Kernel::kScalar;
  } else {
    kernel_ = kernel;
  }
  Reset();
}

void Sha256::Reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(const void* data, size_t length) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  bit_count_ += static_cast<uint64_t>(length) * 8;
  // Top up a partially filled buffer first, then stream whole blocks
  // straight from the input without the bounce through buffer_.
  if (buffer_len_ > 0) {
    size_t take = 64 - buffer_len_;
    if (take > length) take = length;
    std::memcpy(buffer_.data() + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    length -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (length >= 64) {
    ProcessBlock(bytes);
    bytes += 64;
    length -= 64;
  }
  if (length > 0) {
    std::memcpy(buffer_.data(), bytes, length);
    buffer_len_ = length;
  }
}

std::string Sha256::Finish() {
  // Padding: 0x80, zeros, 64-bit big-endian bit count.
  const uint64_t bits = bit_count_;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
    ProcessBlock(buffer_.data());
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
  ProcessBlock(buffer_.data());
  buffer_len_ = 0;

  std::string digest(32, '\0');
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<char>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<char>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<char>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<char>(state_[i]);
  }
  return digest;
}

void Sha256::ProcessBlock(const uint8_t* block) {
#if defined(PPC_SHA_HAVE_X86)
  if (kernel_ == Kernel::kShaNi) {
    ProcessBlockShaNi(block);
    return;
  }
#endif
  ProcessBlockScalar(block);
}

void Sha256::ProcessBlockScalar(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

#if defined(PPC_SHA_HAVE_X86)

// The canonical SHA-NI compression sequence (Intel's reference ordering):
// state lives in two xmm registers as ABEF / CDGH, each _mm_sha256rnds2
// advances four rounds, and the message schedule is maintained with
// _mm_sha256msg1/msg2 plus one _mm_alignr_epi8 per four rounds.
__attribute__((target("sha,sse4.1,ssse3"))) void Sha256::ProcessBlockShaNi(
    const uint8_t* block) {
  __m128i state0, state1, msg, tmp;
  __m128i msg0, msg1, msg2, msg3;

  const __m128i kShuffleMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_[0]));
  state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_[4]));

  tmp = _mm_shuffle_epi32(tmp, 0xB1);          // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);    // EFGH
  state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  // Rounds 0-3.
  msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  msg0 = _mm_shuffle_epi8(msg, kShuffleMask);
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7.
  msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, kShuffleMask);
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11.
  msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, kShuffleMask);
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15.
  msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, kShuffleMask);
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-19.
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 20-23.
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 24-27.
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 28-31.
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 32-35.
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 36-39.
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 40-43.
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 44-47.
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 48-51.
  msg = _mm_add_epi32(
      msg0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-55.
  msg = _mm_add_epi32(
      msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59.
  msg = _mm_add_epi32(
      msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63.
  msg = _mm_add_epi32(
      msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // ABEF

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_[4]), state1);
}

#endif  // PPC_SHA_HAVE_X86

std::string Sha256::Hash(const std::string& data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::string Sha256::HexDigest(const std::string& data) {
  return HexEncode(Hash(data));
}

}  // namespace ppc
