#include "crypto/aes128.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PPC_AES_HAVE_X86 1
#endif

namespace ppc {

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

inline uint8_t XTime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr uint32_t XTimeC(uint32_t x) {
  return ((x << 1) ^ ((x & 0x80) ? 0x1bu : 0u)) & 0xffu;
}

/// The four encryption T-tables: Te0[x] packs the MixColumns-multiplied
/// S-box output {02·S, 01·S, 01·S, 03·S} into one big-endian word; Te1..3
/// are its byte rotations. One round then costs 16 table lookups and 16
/// XORs instead of per-byte field arithmetic.
struct TeTables {
  uint32_t t0[256], t1[256], t2[256], t3[256];
};

constexpr TeTables MakeTeTables() {
  TeTables t{};
  for (int i = 0; i < 256; ++i) {
    const uint32_t s = kSbox[i];
    const uint32_t s2 = XTimeC(s);
    const uint32_t s3 = s2 ^ s;
    const uint32_t w = (s2 << 24) | (s << 16) | (s << 8) | s3;
    t.t0[i] = w;
    t.t1[i] = (w >> 8) | (w << 24);
    t.t2[i] = (w >> 16) | (w << 16);
    t.t3[i] = (w >> 24) | (w << 8);
  }
  return t;
}

constexpr TeTables kTe = MakeTeTables();

inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void StoreBe32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

bool Aes128::AesniSupported() {
#if defined(PPC_AES_HAVE_X86)
  return __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

Result<Aes128> Aes128::Create(const std::string& key) {
  return CreateWithKernel(key,
                          AesniSupported() ? Kernel::kAesni : Kernel::kTTable);
}

Result<Aes128> Aes128::CreateWithKernel(const std::string& key,
                                        Kernel kernel) {
  if (key.size() != 16) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes, got " +
                                   std::to_string(key.size()));
  }
  if (kernel == Kernel::kAesni && !AesniSupported()) {
    return Status::InvalidArgument("AES-NI kernel not supported on this CPU");
  }
  Aes128 aes;
  aes.kernel_ = kernel;
  // Key expansion: 11 round keys of 16 bytes.
  uint8_t w[176];
  std::memcpy(w, key.data(), 16);
  for (int i = 16; i < 176; i += 4) {
    uint8_t temp[4];
    std::memcpy(temp, w + i - 4, 4);
    if (i % 16 == 0) {
      // RotWord + SubWord + Rcon.
      uint8_t t = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / 16 - 1]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
    }
    for (int b = 0; b < 4; ++b) {
      w[i + b] = static_cast<uint8_t>(w[i - 16 + b] ^ temp[b]);
    }
  }
  for (int r = 0; r < 11; ++r) {
    std::memcpy(aes.round_keys_[r].data(), w + 16 * r, 16);
    for (int c = 0; c < 4; ++c) {
      aes.round_words_[4 * r + c] = LoadBe32(w + 16 * r + 4 * c);
    }
  }
  return aes;
}

void Aes128::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  switch (kernel_) {
    case Kernel::kScalar:
      EncryptBlockScalar(in, out);
      return;
    case Kernel::kTTable:
      EncryptBlockTTable(in, out);
      return;
    case Kernel::kAesni:
#if defined(PPC_AES_HAVE_X86)
      EncryptBlockAesni(in, out);
      return;
#else
      EncryptBlockTTable(in, out);
      return;
#endif
  }
}

void Aes128::Encrypt4Blocks(const uint8_t in[64], uint8_t out[64]) const {
#if defined(PPC_AES_HAVE_X86)
  if (kernel_ == Kernel::kAesni) {
    Encrypt4BlocksAesni(in, out);
    return;
  }
#endif
  for (int b = 0; b < 4; ++b) EncryptBlock(in + 16 * b, out + 16 * b);
}

void Aes128::EncryptBlockTTable(const uint8_t in[16], uint8_t out[16]) const {
  const uint32_t* rk = round_words_.data();
  uint32_t s0 = LoadBe32(in) ^ rk[0];
  uint32_t s1 = LoadBe32(in + 4) ^ rk[1];
  uint32_t s2 = LoadBe32(in + 8) ^ rk[2];
  uint32_t s3 = LoadBe32(in + 12) ^ rk[3];

  for (int round = 1; round < 10; ++round) {
    rk += 4;
    const uint32_t t0 = kTe.t0[s0 >> 24] ^ kTe.t1[(s1 >> 16) & 0xff] ^
                        kTe.t2[(s2 >> 8) & 0xff] ^ kTe.t3[s3 & 0xff] ^ rk[0];
    const uint32_t t1 = kTe.t0[s1 >> 24] ^ kTe.t1[(s2 >> 16) & 0xff] ^
                        kTe.t2[(s3 >> 8) & 0xff] ^ kTe.t3[s0 & 0xff] ^ rk[1];
    const uint32_t t2 = kTe.t0[s2 >> 24] ^ kTe.t1[(s3 >> 16) & 0xff] ^
                        kTe.t2[(s0 >> 8) & 0xff] ^ kTe.t3[s1 & 0xff] ^ rk[2];
    const uint32_t t3 = kTe.t0[s3 >> 24] ^ kTe.t1[(s0 >> 16) & 0xff] ^
                        kTe.t2[(s1 >> 8) & 0xff] ^ kTe.t3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  rk += 4;
  const uint32_t o0 =
      ((static_cast<uint32_t>(kSbox[s0 >> 24]) << 24) |
       (static_cast<uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
       static_cast<uint32_t>(kSbox[s3 & 0xff])) ^
      rk[0];
  const uint32_t o1 =
      ((static_cast<uint32_t>(kSbox[s1 >> 24]) << 24) |
       (static_cast<uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
       static_cast<uint32_t>(kSbox[s0 & 0xff])) ^
      rk[1];
  const uint32_t o2 =
      ((static_cast<uint32_t>(kSbox[s2 >> 24]) << 24) |
       (static_cast<uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
       static_cast<uint32_t>(kSbox[s1 & 0xff])) ^
      rk[2];
  const uint32_t o3 =
      ((static_cast<uint32_t>(kSbox[s3 >> 24]) << 24) |
       (static_cast<uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
       static_cast<uint32_t>(kSbox[s2 & 0xff])) ^
      rk[3];
  StoreBe32(o0, out);
  StoreBe32(o1, out + 4);
  StoreBe32(o2, out + 8);
  StoreBe32(o3, out + 12);
}

void Aes128::EncryptBlockScalar(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t state[16];
  for (int i = 0; i < 16; ++i) state[i] = in[i] ^ round_keys_[0][i];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (int i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
    // ShiftRows (column-major state layout: state[4*col + row]).
    uint8_t t;
    t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    t = state[2];
    state[2] = state[10];
    state[10] = t;
    t = state[6];
    state[6] = state[14];
    state[14] = t;
    t = state[3];
    state[3] = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = t;
    // MixColumns (skipped in the final round).
    if (round != 10) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = state + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        uint8_t all = static_cast<uint8_t>(a0 ^ a1 ^ a2 ^ a3);
        col[0] = static_cast<uint8_t>(a0 ^ all ^ XTime(a0 ^ a1));
        col[1] = static_cast<uint8_t>(a1 ^ all ^ XTime(a1 ^ a2));
        col[2] = static_cast<uint8_t>(a2 ^ all ^ XTime(a2 ^ a3));
        col[3] = static_cast<uint8_t>(a3 ^ all ^ XTime(a3 ^ a0));
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) state[i] ^= round_keys_[round][i];
  }
  std::memcpy(out, state, 16);
}

#if defined(PPC_AES_HAVE_X86)

__attribute__((target("aes,sse2"))) void Aes128::EncryptBlockAesni(
    const uint8_t in[16], uint8_t out[16]) const {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(
      s, _mm_loadu_si128(
             reinterpret_cast<const __m128i*>(round_keys_[0].data())));
  for (int r = 1; r < 10; ++r) {
    s = _mm_aesenc_si128(
        s, _mm_loadu_si128(
               reinterpret_cast<const __m128i*>(round_keys_[r].data())));
  }
  s = _mm_aesenclast_si128(
      s, _mm_loadu_si128(
             reinterpret_cast<const __m128i*>(round_keys_[10].data())));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

__attribute__((target("aes,sse2"))) void Aes128::Encrypt4BlocksAesni(
    const uint8_t in[64], uint8_t out[64]) const {
  // Four blocks in flight hide the aesenc latency behind its throughput.
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i rk =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(round_keys_[0].data()));
  __m128i s0 = _mm_xor_si128(_mm_loadu_si128(src), rk);
  __m128i s1 = _mm_xor_si128(_mm_loadu_si128(src + 1), rk);
  __m128i s2 = _mm_xor_si128(_mm_loadu_si128(src + 2), rk);
  __m128i s3 = _mm_xor_si128(_mm_loadu_si128(src + 3), rk);
  for (int r = 1; r < 10; ++r) {
    rk = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys_[r].data()));
    s0 = _mm_aesenc_si128(s0, rk);
    s1 = _mm_aesenc_si128(s1, rk);
    s2 = _mm_aesenc_si128(s2, rk);
    s3 = _mm_aesenc_si128(s3, rk);
  }
  rk = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(round_keys_[10].data()));
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(dst, _mm_aesenclast_si128(s0, rk));
  _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(s1, rk));
  _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(s2, rk));
  _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(s3, rk));
}

#endif  // PPC_AES_HAVE_X86

Result<Aes128Ctr> Aes128Ctr::Create(const std::string& key) {
  PPC_ASSIGN_OR_RETURN(Aes128 cipher, Aes128::Create(key));
  return Aes128Ctr(std::move(cipher));
}

Result<Aes128Ctr> Aes128Ctr::CreateWithKernel(const std::string& key,
                                              Aes128::Kernel kernel) {
  PPC_ASSIGN_OR_RETURN(Aes128 cipher, Aes128::CreateWithKernel(key, kernel));
  return Aes128Ctr(std::move(cipher));
}

Result<std::string> Aes128Ctr::Crypt(const std::string& nonce,
                                     const std::string& data) const {
  std::string out = data;
  PPC_RETURN_IF_ERROR(CryptInPlace(nonce, out.data(), out.size()));
  return out;
}

Status Aes128Ctr::CryptInPlace(const std::string& nonce, char* data,
                               size_t length) const {
  if (nonce.size() != kNonceLength) {
    return Status::InvalidArgument(
        "AES-CTR nonce must be exactly " + std::to_string(kNonceLength) +
        " bytes, got " + std::to_string(nonce.size()));
  }
  // Counter-block batch: nonce || big-endian block counter, four blocks at
  // a time so the AES-NI kernel can pipeline them.
  uint8_t blocks[64];
  uint8_t keystream[64];
  for (int b = 0; b < 4; ++b) {
    std::memcpy(blocks + 16 * b, nonce.data(), kNonceLength);
  }
  uint64_t counter = 0;
  size_t offset = 0;

  const auto set_counter = [&blocks](int slot, uint64_t value) {
    uint8_t* p = blocks + 16 * slot + 8;
    for (int i = 0; i < 8; ++i) {
      p[i] = static_cast<uint8_t>(value >> (56 - 8 * i));
    }
  };

  while (length - offset >= 64) {
    for (int b = 0; b < 4; ++b) set_counter(b, counter++);
    cipher_.Encrypt4Blocks(blocks, keystream);
    // XOR word-wide; memcpy keeps the loads/stores alignment-safe and
    // compiles to plain 64-bit ops.
    for (int i = 0; i < 8; ++i) {
      uint64_t v, k;
      std::memcpy(&v, data + offset + 8 * i, 8);
      std::memcpy(&k, keystream + 8 * i, 8);
      v ^= k;
      std::memcpy(data + offset + 8 * i, &v, 8);
    }
    offset += 64;
  }

  while (offset < length) {
    set_counter(0, counter++);
    cipher_.EncryptBlock(blocks, keystream);
    size_t chunk = length - offset;
    if (chunk > 16) chunk = 16;
    size_t i = 0;
    for (; i + 8 <= chunk; i += 8) {
      uint64_t v, k;
      std::memcpy(&v, data + offset + i, 8);
      std::memcpy(&k, keystream + i, 8);
      v ^= k;
      std::memcpy(data + offset + i, &v, 8);
    }
    for (; i < chunk; ++i) {
      data[offset + i] = static_cast<char>(
          static_cast<uint8_t>(data[offset + i]) ^ keystream[i]);
    }
    offset += chunk;
  }
  return Status::OK();
}

}  // namespace ppc
