#ifndef PPC_CRYPTO_AES128_H_
#define PPC_CRYPTO_AES128_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace ppc {

/// AES-128 block cipher (FIPS 197), encrypt direction only — sufficient for
/// CTR mode, which is what the secure-channel transport uses.
///
/// Three interchangeable kernels compute the identical function:
///
///   * kScalar — byte-wise SubBytes/ShiftRows/MixColumns loops. The
///     readable reference implementation the others are tested against.
///   * kTTable — word-oriented T-table rounds (four 1 KiB lookup tables
///     combining SubBytes+ShiftRows+MixColumns per 32-bit column). The
///     portable fast path, ~4-5x the scalar kernel. Like the scalar
///     S-box path it replaces, its key-dependent table indices are a
///     classic cache-timing side channel — acceptable for this system's
///     threat model (transport keys model channels secured out of band;
///     parties are not co-located with adversaries), and moot wherever
///     AES-NI is available, which is the default whenever the CPU has it.
///   * kAesni — hardware AES round instructions, used when the CPU
///     supports them. Fastest by another order of magnitude.
///
/// `Create` picks the best kernel for the host; `CreateWithKernel` pins one
/// (tests pin each kernel against the FIPS-197 / SP 800-38A vectors).
class Aes128 {
 public:
  enum class Kernel : uint8_t { kScalar, kTTable, kAesni };

  /// Expands a 16-byte key and selects the fastest supported kernel.
  /// Fails with kInvalidArgument on wrong key size.
  static Result<Aes128> Create(const std::string& key);

  /// Expands the key and pins `kernel`. Fails with kInvalidArgument on
  /// wrong key size or when `kernel` is kAesni on a CPU without AES-NI.
  static Result<Aes128> CreateWithKernel(const std::string& key,
                                         Kernel kernel);

  /// True when the host CPU exposes the AES round instructions.
  static bool AesniSupported();

  Kernel kernel() const { return kernel_; }

  /// Encrypts one 16-byte block `in` into `out` (may alias).
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Encrypts four independent 16-byte blocks — the CTR keystream batch.
  /// On the AES-NI kernel the four blocks pipeline through the AES unit;
  /// elsewhere this is four sequential block encryptions.
  void Encrypt4Blocks(const uint8_t in[64], uint8_t out[64]) const;

 private:
  Aes128() = default;

  void EncryptBlockScalar(const uint8_t in[16], uint8_t out[16]) const;
  void EncryptBlockTTable(const uint8_t in[16], uint8_t out[16]) const;
#if defined(__x86_64__) || defined(__i386__)
  void EncryptBlockAesni(const uint8_t in[16], uint8_t out[16]) const;
  void Encrypt4BlocksAesni(const uint8_t in[64], uint8_t out[64]) const;
#endif

  /// Round keys as bytes (scalar + AES-NI kernels load these directly).
  std::array<std::array<uint8_t, 16>, 11> round_keys_;
  /// The same schedule packed as big-endian words, one per state column
  /// (the T-table kernel's operand layout).
  std::array<uint32_t, 44> round_words_;
  Kernel kernel_ = Kernel::kScalar;
};

/// AES-128-CTR keystream cipher.
///
/// Encryption and decryption are the same operation (XOR with the keystream
/// generated from a per-message nonce). The secure channel pairs this with
/// HMAC-SHA-256 in encrypt-then-MAC composition.
///
/// Counter-block layout: `nonce (8 bytes) || big-endian 64-bit block
/// counter starting at 0` — fixed, because it is on the wire format of
/// every transport frame.
class Aes128Ctr {
 public:
  /// Exact nonce length `Crypt` accepts. Matches the transport frame's
  /// nonce field (`SecureChannel::kNonceLength`).
  static constexpr size_t kNonceLength = 8;

  /// `key` must be 16 bytes.
  static Result<Aes128Ctr> Create(const std::string& key);

  /// As `Create`, with the block-cipher kernel pinned (for tests).
  static Result<Aes128Ctr> CreateWithKernel(const std::string& key,
                                            Aes128::Kernel kernel);

  /// XORs `data` with the keystream for (`nonce`, counter=0...). `nonce`
  /// must be exactly `kNonceLength` bytes (kInvalidArgument otherwise);
  /// each message must use a fresh nonce under one key.
  Result<std::string> Crypt(const std::string& nonce,
                            const std::string& data) const;

  /// In-place variant: XORs the keystream into `data[0..length)` with no
  /// allocation. Same nonce contract as `Crypt`.
  Status CryptInPlace(const std::string& nonce, char* data,
                      size_t length) const;

 private:
  explicit Aes128Ctr(Aes128 cipher) : cipher_(std::move(cipher)) {}
  Aes128 cipher_;
};

}  // namespace ppc

#endif  // PPC_CRYPTO_AES128_H_
