#ifndef PPC_CRYPTO_AES128_H_
#define PPC_CRYPTO_AES128_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace ppc {

/// AES-128 block cipher (FIPS 197), encrypt direction only — sufficient for
/// CTR mode, which is what the secure-channel transport uses.
class Aes128 {
 public:
  /// Expands a 16-byte key. Fails with kInvalidArgument on wrong key size.
  static Result<Aes128> Create(const std::string& key);

  /// Encrypts one 16-byte block `in` into `out` (may alias).
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

 private:
  Aes128() = default;
  std::array<std::array<uint8_t, 16>, 11> round_keys_;
};

/// AES-128-CTR keystream cipher.
///
/// Encryption and decryption are the same operation (XOR with the keystream
/// generated from a per-message nonce). The secure channel pairs this with
/// HMAC-SHA-256 in encrypt-then-MAC composition.
class Aes128Ctr {
 public:
  /// `key` must be 16 bytes.
  static Result<Aes128Ctr> Create(const std::string& key);

  /// XORs `data` with the keystream for (`nonce`, counter=0...). `nonce`
  /// must be 8 bytes; each message must use a fresh nonce under one key.
  std::string Crypt(const std::string& nonce, const std::string& data) const;

 private:
  explicit Aes128Ctr(Aes128 cipher) : cipher_(std::move(cipher)) {}
  Aes128 cipher_;
};

}  // namespace ppc

#endif  // PPC_CRYPTO_AES128_H_
