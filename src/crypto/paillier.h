#ifndef PPC_CRYPTO_PAILLIER_H_
#define PPC_CRYPTO_PAILLIER_H_

#include <gmpxx.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "rng/prng.h"

namespace ppc {

/// Paillier additively homomorphic cryptosystem (from scratch, on GMP).
///
/// This is the substrate for the homomorphic *baseline* protocols (DESIGN.md
/// experiment E13): the paper motivates its masking design by the
/// communication cost of cryptographic alternatives such as Atallah et
/// al.'s secure sequence comparison; the baselines quantify that gap.
///
/// Standard simplified parameterization: g = n + 1, so
///   Enc(m; r) = (1 + m·n) · r^n mod n²,
///   Dec(c)    = L(c^λ mod n²) · λ⁻¹ mod n, with L(u) = (u − 1)/n.
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  explicit PaillierPublicKey(mpz_class n);

  /// Encrypts a non-negative message < n. `prng` supplies the blinding r.
  mpz_class Encrypt(const mpz_class& message, Prng* prng) const;

  /// Encrypts a signed 64-bit value (negatives wrap mod n).
  mpz_class EncryptSigned(int64_t message, Prng* prng) const;

  /// Homomorphic addition: Dec(Add(a, b)) = Dec(a) + Dec(b) mod n.
  mpz_class Add(const mpz_class& a, const mpz_class& b) const;

  /// Homomorphic plaintext multiply: Dec(Mul(c, k)) = k·Dec(c) mod n.
  mpz_class MulPlain(const mpz_class& c, const mpz_class& k) const;

  /// Homomorphic negation.
  mpz_class Negate(const mpz_class& c) const;

  const mpz_class& n() const { return n_; }
  const mpz_class& n_squared() const { return n_squared_; }

  /// Ciphertext size in bytes (what a wire transfer would cost).
  size_t CiphertextBytes() const;

 private:
  mpz_class n_;
  mpz_class n_squared_;
};

/// Private key half of the Paillier scheme.
class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;
  PaillierPrivateKey(mpz_class lambda, mpz_class mu, PaillierPublicKey pub);

  /// Decrypts to the canonical representative in [0, n).
  mpz_class Decrypt(const mpz_class& ciphertext) const;

  /// Decrypts and maps the result into (−n/2, n/2] as a signed value.
  mpz_class DecryptSigned(const mpz_class& ciphertext) const;

  const PaillierPublicKey& public_key() const { return public_; }

 private:
  mpz_class lambda_;
  mpz_class mu_;
  PaillierPublicKey public_;
};

/// Key pair container.
struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// Generates a key pair with an n of roughly `modulus_bits` bits.
/// `modulus_bits` must be >= 64. Key generation is deterministic in `prng`.
Result<PaillierKeyPair> GeneratePaillierKeyPair(size_t modulus_bits,
                                                Prng* prng);

}  // namespace ppc

#endif  // PPC_CRYPTO_PAILLIER_H_
