#ifndef PPC_CRYPTO_DET_ENCRYPT_H_
#define PPC_CRYPTO_DET_ENCRYPT_H_

#include <string>

#include "crypto/hmac.h"

namespace ppc {

/// Deterministic, equality-preserving encryption for categorical values
/// (paper Sec. 4.3).
///
/// The data holders share `key`; the third party does not. Identical
/// plaintexts map to identical tokens, so the third party can evaluate the
/// categorical distance function (0 iff equal) on tokens alone, and — being
/// non-colluding and keyless — learns only the equality pattern, exactly as
/// the paper argues. Implemented as a PRF: token = HMAC-SHA-256(key,
/// domain-separated plaintext), truncated to 16 bytes. The HMAC key
/// schedule is precomputed once per encryptor, so a whole column encrypts
/// without re-deriving it per value.
class DeterministicEncryptor {
 public:
  /// `key` may be any byte string; it is conditioned through the PRF.
  explicit DeterministicEncryptor(const std::string& key) : key_(key) {}

  /// Returns the 16-byte token for `plaintext`.
  std::string Encrypt(const std::string& plaintext) const;

  /// Token length in bytes.
  static constexpr size_t kTokenLength = 16;

 private:
  HmacSha256::Key key_;
};

}  // namespace ppc

#endif  // PPC_CRYPTO_DET_ENCRYPT_H_
