#include "crypto/paillier.h"

#include "crypto/bigint.h"

namespace ppc {

PaillierPublicKey::PaillierPublicKey(mpz_class n)
    : n_(std::move(n)), n_squared_(n_ * n_) {}

mpz_class PaillierPublicKey::Encrypt(const mpz_class& message,
                                     Prng* prng) const {
  // r uniform in [1, n), coprime to n with overwhelming probability.
  mpz_class r = bigint::RandomBelow(prng, n_ - 1) + 1;
  mpz_class r_to_n;
  mpz_powm(r_to_n.get_mpz_t(), r.get_mpz_t(), n_.get_mpz_t(),
           n_squared_.get_mpz_t());
  // (1 + m·n) · r^n mod n².
  mpz_class c = (1 + message * n_) % n_squared_;
  c = (c * r_to_n) % n_squared_;
  return c;
}

mpz_class PaillierPublicKey::EncryptSigned(int64_t message,
                                           Prng* prng) const {
  mpz_class m;
  if (message >= 0) {
    m = static_cast<unsigned long>(static_cast<uint64_t>(message) >> 32);
    m <<= 32;
    m += static_cast<unsigned long>(static_cast<uint64_t>(message) &
                                    0xffffffffull);
  } else {
    uint64_t mag = static_cast<uint64_t>(-(message + 1)) + 1;
    m = static_cast<unsigned long>(mag >> 32);
    m <<= 32;
    m += static_cast<unsigned long>(mag & 0xffffffffull);
    m = n_ - m;  // −|m| mod n.
  }
  return Encrypt(m, prng);
}

mpz_class PaillierPublicKey::Add(const mpz_class& a,
                                 const mpz_class& b) const {
  return (a * b) % n_squared_;
}

mpz_class PaillierPublicKey::MulPlain(const mpz_class& c,
                                      const mpz_class& k) const {
  mpz_class exponent = k % n_;
  if (exponent < 0) exponent += n_;
  mpz_class out;
  mpz_powm(out.get_mpz_t(), c.get_mpz_t(), exponent.get_mpz_t(),
           n_squared_.get_mpz_t());
  return out;
}

mpz_class PaillierPublicKey::Negate(const mpz_class& c) const {
  return MulPlain(c, n_ - 1);
}

size_t PaillierPublicKey::CiphertextBytes() const {
  return (mpz_sizeinbase(n_squared_.get_mpz_t(), 2) + 7) / 8;
}

PaillierPrivateKey::PaillierPrivateKey(mpz_class lambda, mpz_class mu,
                                       PaillierPublicKey pub)
    : lambda_(std::move(lambda)), mu_(std::move(mu)), public_(std::move(pub)) {}

mpz_class PaillierPrivateKey::Decrypt(const mpz_class& ciphertext) const {
  const mpz_class& n = public_.n();
  const mpz_class& n2 = public_.n_squared();
  mpz_class u;
  mpz_powm(u.get_mpz_t(), ciphertext.get_mpz_t(), lambda_.get_mpz_t(),
           n2.get_mpz_t());
  mpz_class l = (u - 1) / n;
  return (l * mu_) % n;
}

mpz_class PaillierPrivateKey::DecryptSigned(const mpz_class& ciphertext) const {
  mpz_class m = Decrypt(ciphertext);
  const mpz_class& n = public_.n();
  if (m > n / 2) m -= n;
  return m;
}

Result<PaillierKeyPair> GeneratePaillierKeyPair(size_t modulus_bits,
                                                Prng* prng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument(
        "Paillier modulus must be at least 64 bits");
  }
  mpz_class p, q, n;
  do {
    p = bigint::RandomPrime(prng, modulus_bits / 2);
    q = bigint::RandomPrime(prng, modulus_bits / 2);
    n = p * q;
  } while (p == q);

  mpz_class p1 = p - 1;
  mpz_class q1 = q - 1;
  mpz_class lambda;
  mpz_lcm(lambda.get_mpz_t(), p1.get_mpz_t(), q1.get_mpz_t());

  // With g = n+1: mu = lambda^{-1} mod n (lambda is coprime to n).
  mpz_class mu;
  if (mpz_invert(mu.get_mpz_t(), lambda.get_mpz_t(), n.get_mpz_t()) == 0) {
    return Status::Internal("lambda not invertible mod n (degenerate primes)");
  }

  PaillierKeyPair pair;
  pair.public_key = PaillierPublicKey(n);
  pair.private_key = PaillierPrivateKey(lambda, mu, pair.public_key);
  return pair;
}

}  // namespace ppc
