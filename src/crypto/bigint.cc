#include "crypto/bigint.h"

#include <vector>

namespace ppc {
namespace bigint {

std::string ToBytes(const mpz_class& value) {
  if (value == 0) return std::string();
  size_t count = 0;
  // 1 byte words, big-endian word order.
  void* raw = mpz_export(nullptr, &count, 1, 1, 1, 0, value.get_mpz_t());
  std::string out(static_cast<char*>(raw), count);
  void (*freefunc)(void*, size_t);
  mp_get_memory_functions(nullptr, nullptr, &freefunc);
  freefunc(raw, count);
  return out;
}

mpz_class FromBytes(const std::string& bytes) {
  mpz_class value;
  if (!bytes.empty()) {
    mpz_import(value.get_mpz_t(), bytes.size(), 1, 1, 1, 0, bytes.data());
  }
  return value;
}

mpz_class RandomBits(Prng* prng, size_t bits) {
  mpz_class value = 0;
  size_t words = (bits + 63) / 64;
  for (size_t i = 0; i < words; ++i) {
    value <<= 64;
    mpz_class word;
    // mpz_class has no direct uint64 constructor on all platforms; go via
    // two 32-bit halves to stay portable.
    uint64_t w = prng->Next();
    word = static_cast<unsigned long>(w >> 32);
    word <<= 32;
    word += static_cast<unsigned long>(w & 0xffffffffull);
    value += word;
  }
  // Trim to exactly `bits` and force the top bit.
  mpz_class mask = (mpz_class(1) << bits) - 1;
  value &= mask;
  value |= mpz_class(1) << (bits - 1);
  return value;
}

mpz_class RandomBelow(Prng* prng, const mpz_class& bound) {
  if (bound <= 1) return 0;
  size_t bits = mpz_sizeinbase(bound.get_mpz_t(), 2);
  mpz_class wide = RandomBits(prng, bits + 64);
  return wide % bound;
}

mpz_class RandomPrime(Prng* prng, size_t bits) {
  mpz_class start = RandomBits(prng, bits);
  mpz_class prime;
  mpz_nextprime(prime.get_mpz_t(), start.get_mpz_t());
  return prime;
}

}  // namespace bigint
}  // namespace ppc
