#include "crypto/diffie_hellman.h"

#include "crypto/bigint.h"
#include "crypto/sha256.h"

namespace ppc {

namespace {
// RFC 3526, group 14 (2048-bit MODP).
const char kModp2048Hex[] =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF";
}  // namespace

const mpz_class& DiffieHellman::Modulus() {
  static const mpz_class p(kModp2048Hex, 16);
  return p;
}

const mpz_class& DiffieHellman::Generator() {
  static const mpz_class g(2);
  return g;
}

DiffieHellman::KeyPair DiffieHellman::Generate(Prng* prng) {
  KeyPair pair;
  pair.private_key = bigint::RandomBits(prng, 256);
  mpz_powm(pair.public_key.get_mpz_t(), Generator().get_mpz_t(),
           pair.private_key.get_mpz_t(), Modulus().get_mpz_t());
  return pair;
}

mpz_class DiffieHellman::SharedElement(const mpz_class& private_key,
                                       const mpz_class& peer_public) {
  mpz_class shared;
  mpz_powm(shared.get_mpz_t(), peer_public.get_mpz_t(),
           private_key.get_mpz_t(), Modulus().get_mpz_t());
  return shared;
}

std::string DiffieHellman::DeriveSeed(const mpz_class& shared_element,
                                      const std::string& label) {
  Sha256 hasher;
  hasher.Update("ppc-dh-seed:");
  hasher.Update(bigint::ToBytes(shared_element));
  hasher.Update(":");
  hasher.Update(label);
  return hasher.Finish();
}

}  // namespace ppc
