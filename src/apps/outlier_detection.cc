#include "apps/outlier_detection.h"

#include <algorithm>

namespace ppc {

Result<std::vector<OutlierDetection::Outlier>> OutlierDetection::Detect(
    const DissimilarityMatrix& matrix, const std::vector<PartyExtent>& extents,
    const Options& options) {
  if (options.min_far_fraction < 0.0 || options.min_far_fraction > 1.0) {
    return Status::InvalidArgument("min_far_fraction must be in [0, 1]");
  }
  const size_t n = matrix.num_objects();
  if (n < 2) {
    return Status::InvalidArgument("need at least two objects");
  }
  size_t covered = 0;
  for (const PartyExtent& extent : extents) covered += extent.count;
  if (covered != n) {
    return Status::InvalidArgument("party extents do not cover the matrix");
  }

  std::vector<Outlier> outliers;
  for (size_t i = 0; i < n; ++i) {
    size_t far = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (matrix.at(i, j) > options.distance_threshold) ++far;
    }
    double fraction = static_cast<double>(far) / static_cast<double>(n - 1);
    if (fraction >= options.min_far_fraction) {
      ObjectRef ref;
      ref.global_index = i;
      for (const PartyExtent& extent : extents) {
        if (i >= extent.offset && i < extent.offset + extent.count) {
          ref.party = extent.party;
          ref.local_index = i - extent.offset;
          break;
        }
      }
      outliers.push_back({std::move(ref), fraction});
    }
  }
  std::sort(outliers.begin(), outliers.end(),
            [](const Outlier& a, const Outlier& b) {
              return a.far_fraction > b.far_fraction;
            });
  return outliers;
}

}  // namespace ppc
