#ifndef PPC_APPS_RECORD_LINKAGE_H_
#define PPC_APPS_RECORD_LINKAGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/outcome.h"
#include "distance/dissimilarity_matrix.h"

namespace ppc {

/// Describes one party's slice of the global object numbering, as the third
/// party knows it from the roster.
struct PartyExtent {
  std::string party;
  size_t offset = 0;
  size_t count = 0;
};

/// Privacy-preserving record linkage on top of the dissimilarity pipeline —
/// one of the paper's claimed further applications ("our dissimilarity
/// matrix construction algorithm is also applicable to privacy preserving
/// record linkage and outlier detection problems").
///
/// The third party, holding the (secret) merged dissimilarity matrix,
/// publishes only the matched pairs: cross-party object pairs whose
/// distance is at most `threshold`. In this library the routine runs over a
/// `DissimilarityMatrix` plus roster extents, i.e. exactly the state the
/// `ThirdParty` holds after a session; `examples/record_linkage.cc` wires
/// the two together.
class RecordLinkage {
 public:
  struct Link {
    ObjectRef left;
    ObjectRef right;
    double distance = 0.0;
  };

  struct Options {
    /// Maximum merged distance for a match (matrix is normalized to [0,1]).
    double threshold = 0.05;
    /// Only report pairs owned by different parties (the linkage setting);
    /// set false to include same-party duplicates.
    bool cross_party_only = true;
  };

  /// Scans all pairs and returns links sorted by ascending distance.
  static Result<std::vector<Link>> FindLinks(
      const DissimilarityMatrix& matrix,
      const std::vector<PartyExtent>& extents, const Options& options);
};

}  // namespace ppc

#endif  // PPC_APPS_RECORD_LINKAGE_H_
