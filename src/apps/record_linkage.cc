#include "apps/record_linkage.h"

#include <algorithm>

namespace ppc {

namespace {

Result<ObjectRef> RefFor(size_t global_index,
                         const std::vector<PartyExtent>& extents) {
  for (const PartyExtent& extent : extents) {
    if (global_index >= extent.offset &&
        global_index < extent.offset + extent.count) {
      ObjectRef ref;
      ref.party = extent.party;
      ref.local_index = global_index - extent.offset;
      ref.global_index = global_index;
      return ref;
    }
  }
  return Status::InvalidArgument("global index " +
                                 std::to_string(global_index) +
                                 " not covered by any party extent");
}

}  // namespace

Result<std::vector<RecordLinkage::Link>> RecordLinkage::FindLinks(
    const DissimilarityMatrix& matrix, const std::vector<PartyExtent>& extents,
    const Options& options) {
  if (options.threshold < 0.0) {
    return Status::InvalidArgument("threshold must be >= 0");
  }
  size_t covered = 0;
  for (const PartyExtent& extent : extents) covered += extent.count;
  if (covered != matrix.num_objects()) {
    return Status::InvalidArgument("party extents cover " +
                                   std::to_string(covered) + " objects, "
                                   "matrix has " +
                                   std::to_string(matrix.num_objects()));
  }

  std::vector<Link> links;
  for (size_t i = 1; i < matrix.num_objects(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      double d = matrix.at(i, j);
      if (d > options.threshold) continue;
      PPC_ASSIGN_OR_RETURN(ObjectRef left, RefFor(i, extents));
      PPC_ASSIGN_OR_RETURN(ObjectRef right, RefFor(j, extents));
      if (options.cross_party_only && left.party == right.party) continue;
      links.push_back({std::move(left), std::move(right), d});
    }
  }
  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    return a.distance < b.distance;
  });
  return links;
}

}  // namespace ppc
