#ifndef PPC_APPS_OUTLIER_DETECTION_H_
#define PPC_APPS_OUTLIER_DETECTION_H_

#include <vector>

#include "apps/record_linkage.h"
#include "common/result.h"
#include "core/outcome.h"
#include "distance/dissimilarity_matrix.h"

namespace ppc {

/// Distance-based outlier detection (Knorr & Ng's DB(p, D) definition) over
/// the privacy-preserving dissimilarity matrix — the paper's second claimed
/// further application.
///
/// An object is a DB(p, D) outlier when at least fraction `p` of all other
/// objects lie farther than distance `D` from it. Like clustering, this
/// needs only pairwise distances, so the third party can run it and publish
/// the outlier list without any further protocol rounds.
class OutlierDetection {
 public:
  struct Options {
    /// Neighborhood radius D (matrix is normalized to [0, 1]).
    double distance_threshold = 0.3;
    /// Minimum fraction p of objects that must be farther than D.
    double min_far_fraction = 0.95;
  };

  struct Outlier {
    ObjectRef object;
    /// Fraction of other objects farther than D.
    double far_fraction = 0.0;
  };

  /// Returns outliers sorted by descending isolation (far_fraction).
  static Result<std::vector<Outlier>> Detect(
      const DissimilarityMatrix& matrix,
      const std::vector<PartyExtent>& extents, const Options& options);
};

}  // namespace ppc

#endif  // PPC_APPS_OUTLIER_DETECTION_H_
