#ifndef PPC_PPCLUST_H_
#define PPC_PPCLUST_H_

/// \file
/// Umbrella header for the ppclust library: privacy preserving clustering
/// on horizontally partitioned data (İnan et al., ICDEW 2006).
///
/// Typical entry points:
///   * `ppc::ClusteringSession` — run the full multi-party pipeline.
///   * `ppc::DataHolder` / `ppc::ThirdParty` — the protocol roles.
///   * `ppc::Network` — the transport seam; `ppc::InMemoryNetwork` is the
///     in-process simulator, `ppc::TcpNetwork` the socket deployment, and
///     `ppc::PartyRunner` drives one party's schedule per process.
///   * `ppc::Generators` / `ppc::Partitioner` — synthetic workloads.
///   * `ppc::Agglomerative` / `ppc::Dbscan` / `ppc::KMedoids` — clustering.
///   * `ppc::RecordLinkage` / `ppc::OutlierDetection` — further
///     applications of the dissimilarity pipeline.

#include "apps/outlier_detection.h"
#include "apps/record_linkage.h"
#include "cluster/agglomerative.h"
#include "cluster/dbscan.h"
#include "cluster/dendrogram.h"
#include "cluster/kmedoids.h"
#include "cluster/quality.h"
#include "common/fixed_point.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/data_holder.h"
#include "core/outcome.h"
#include "core/party_runner.h"
#include "core/schedule.h"
#include "core/session.h"
#include "core/taxonomy_protocol.h"
#include "core/third_party.h"
#include "data/alphabet.h"
#include "data/csv.h"
#include "data/data_matrix.h"
#include "data/generators.h"
#include "data/partition.h"
#include "data/schema.h"
#include "data/taxonomy.h"
#include "distance/comparators.h"
#include "distance/dissimilarity_matrix.h"
#include "distance/edit_distance.h"
#include "net/in_memory_network.h"
#include "net/network.h"
#include "net/tcp_network.h"
#include "rng/prng.h"

#endif  // PPC_PPCLUST_H_
