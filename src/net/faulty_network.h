#ifndef PPC_NET_FAULTY_NETWORK_H_
#define PPC_NET_FAULTY_NETWORK_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/network.h"

namespace ppc {

/// One chaos recipe: per-frame fault probabilities (evaluated from a
/// deterministic per-channel random stream) plus a per-channel frame
/// budget. Probabilities are in [0, 1] and are checked in severity
/// order — disconnect, drop, corrupt, reorder, duplicate, delay — so at
/// most one fault fires per frame.
struct FaultProfile {
  /// Frame silently vanishes: the receiver eventually times out with
  /// `kUnavailable` (or `kDeadlineExceeded` under a session deadline).
  double drop_probability = 0.0;
  /// Frame is delivered late: the sending thread sleeps a seeded amount
  /// in [1, max_delay_ms] first. Faults nothing semantically — sessions
  /// complete bit-identically, just slower (the lossy-WAN profile).
  double delay_probability = 0.0;
  uint64_t max_delay_ms = 0;
  /// The sealed wire bytes are delivered twice. On an authenticated
  /// transport the replay shows up as a typed integrity failure at the
  /// receiver, never as silent double-processing.
  double duplicate_probability = 0.0;
  /// Frame is held back and delivered after the channel's next frame
  /// (both sealed in delivery order, so each frame is individually
  /// valid). A held frame with no successor is dropped at session end.
  double reorder_probability = 0.0;
  /// Seeded garbage replaces the sealed frame: MAC verification fails at
  /// the receiver with `kDataLoss`.
  double corrupt_probability = 0.0;
  /// After this many frames a channel behaves like a dead peer: every
  /// later send fails fast with `kUnavailable` and delivers nothing.
  /// 0 = never disconnect.
  uint64_t disconnect_after_frames = 0;

  /// Jittery but lossless WAN: ~15% of frames delayed up to 3 ms. Every
  /// suite passes unchanged under this profile — it only stretches time.
  static FaultProfile LossyWan() {
    FaultProfile p;
    p.delay_probability = 0.15;
    p.max_delay_ms = 3;
    return p;
  }

  /// A peer that dies mid-protocol: each channel goes dark after 25
  /// frames. Sessions must fail with a typed Status, not hang.
  static FaultProfile CrashyPeer() {
    FaultProfile p;
    p.disconnect_after_frames = 25;
    return p;
  }
};

/// Parses "lossy-wan" / "crashy-peer" / "none" (the PPC_CHAOS_PROFILE
/// env values and CLI spellings) into a profile.
Result<FaultProfile> FaultProfileFromName(const std::string& name);

/// Deterministic chaos wrapper: a `ppc::Network` that forwards to any
/// backend while injecting a seeded per-channel fault schedule on the
/// send path. Wraps the in-memory simulator and the TCP transport alike,
/// and composes with `SessionNetwork` (parties talk to the wrapper; the
/// registry's views can bind sessions over it), so every net/core/session
/// suite re-runs under injected faults without code changes.
///
/// Determinism: each directed channel `(session, from, to)` owns a
/// splitmix64 stream seeded from (seed, session, from, to), and each
/// frame consumes draws in a fixed order — so a failing (seed, profile)
/// pair replays exactly, regardless of thread interleaving across
/// channels.
///
/// Faults act on the *send* path only (where the wire bytes are born):
/// receives, stats, taps, and registration forward untouched. Receivers
/// experience faults as the protocol would on a real bad network — a
/// missing frame (timeout), a corrupt frame (integrity failure), an
/// unexpected frame (protocol violation).
///
/// Thread-safe: per-channel chaos state lives under one mutex; sleeps
/// and base-network calls happen outside it.
class FaultyNetwork : public Network {
 public:
  /// Wraps `base` (not owned, must outlive the wrapper).
  FaultyNetwork(Network* base, FaultProfile profile, uint64_t seed);

  Network* base() const { return base_; }
  uint64_t seed() const { return seed_; }
  const FaultProfile& profile() const { return profile_; }

  /// Frames whose chaos decision actually fired, by class — lets tests
  /// assert the schedule did something and print reproduction hints.
  struct FaultCounts {
    uint64_t dropped = 0;
    uint64_t delayed = 0;
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
    uint64_t corrupted = 0;
    uint64_t disconnected = 0;
  };
  FaultCounts fault_counts() const EXCLUDES(chaos_mutex_);

  // -- Network: send path carries the chaos ---------------------------------
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override {
    return SendOn(kDefaultSession, from, to, topic, std::move(payload));
  }
  Status SendOn(const std::string& session, const std::string& from,
                const std::string& to, const std::string& topic,
                std::string payload) override EXCLUDES(chaos_mutex_);

  // -- Network: everything else forwards ------------------------------------
  Status RegisterParty(const std::string& name) override {
    return base_->RegisterParty(name);
  }
  bool HasParty(const std::string& name) const override {
    return base_->HasParty(name);
  }
  Result<Message> Receive(const std::string& to, const std::string& from,
                          const std::string& expected_topic = "") override {
    return base_->Receive(to, from, expected_topic);
  }
  Result<Message> ReceiveOn(const std::string& session, const std::string& to,
                            const std::string& from,
                            const std::string& expected_topic = "") override {
    return base_->ReceiveOn(session, to, from, expected_topic);
  }
  Result<Message> ReceiveCancellable(const std::string& to,
                                     const std::string& from,
                                     const std::string& expected_topic,
                                     const CancelToken* cancel) override {
    return base_->ReceiveCancellable(to, from, expected_topic, cancel);
  }
  Result<Message> ReceiveOnCancellable(const std::string& session,
                                       const std::string& to,
                                       const std::string& from,
                                       const std::string& expected_topic,
                                       const CancelToken* cancel) override {
    return base_->ReceiveOnCancellable(session, to, from, expected_topic,
                                       cancel);
  }
  void set_receive_timeout(std::chrono::milliseconds timeout) override {
    base_->set_receive_timeout(timeout);
  }
  std::chrono::milliseconds receive_timeout() const override {
    return base_->receive_timeout();
  }
  size_t PendingCount(const std::string& to) const override {
    return base_->PendingCount(to);
  }
  size_t PendingCountOn(const std::string& session,
                        const std::string& to) const override {
    return base_->PendingCountOn(session, to);
  }
  ChannelStats StatsFor(const std::string& from,
                        const std::string& to) const override {
    return base_->StatsFor(from, to);
  }
  ChannelStats StatsOn(const std::string& session, const std::string& from,
                       const std::string& to) const override {
    return base_->StatsOn(session, from, to);
  }
  ChannelStats TotalSentBy(const std::string& party) const override {
    return base_->TotalSentBy(party);
  }
  ChannelStats TotalSentByOn(const std::string& session,
                             const std::string& party) const override {
    return base_->TotalSentByOn(session, party);
  }
  ChannelStats GrandTotal() const override { return base_->GrandTotal(); }
  ChannelStats GrandTotalOn(const std::string& session) const override {
    return base_->GrandTotalOn(session);
  }
  void ResetStats() override { base_->ResetStats(); }
  void AddTap(const std::string& from, const std::string& to,
              Tap tap) override {
    base_->AddTap(from, to, std::move(tap));
  }
  void AddTapOn(const std::string& session, const std::string& from,
                const std::string& to, Tap tap) override {
    base_->AddTapOn(session, from, to, std::move(tap));
  }
  Status InjectFrame(const std::string& from, const std::string& to,
                     const std::string& topic,
                     std::string wire_bytes) override {
    return base_->InjectFrame(from, to, topic, std::move(wire_bytes));
  }
  Status InjectFrameOn(const std::string& session, const std::string& from,
                       const std::string& to, const std::string& topic,
                       std::string wire_bytes) override {
    return base_->InjectFrameOn(session, from, to, topic,
                                std::move(wire_bytes));
  }
  TransportSecurity security() const override { return base_->security(); }

  /// Forwards to the base after dropping the wrapper's own per-channel
  /// chaos state for `session` (frame counters, held reorder frames).
  void PurgeSession(const std::string& session) override
      EXCLUDES(chaos_mutex_);

 private:
  /// (session, from, to), same identity as the transport's channels.
  using ChannelKey = std::tuple<std::string, std::string, std::string>;

  /// Chaos state of one directed channel.
  struct ChannelChaos {
    uint64_t rng_state = 0;   // splitmix64 stream, seeded per channel.
    uint64_t frames_sent = 0; // Frames offered to this channel so far.
    bool holding = false;     // A reorder victim awaits the next frame.
    std::string held_topic;
    std::string held_payload;
    std::string last_wire;    // Sealed bytes of the last real send.
  };

  /// The per-frame chaos decision, resolved under the lock.
  enum class FaultKind {
    kNone,
    kDrop,
    kDelay,
    kDuplicate,
    kReorder,
    kCorrupt,
    kDisconnect
  };
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    uint64_t delay_ms = 0;
    std::string corrupt_bytes;
    /// Reorder: the previously held frame to release after this one.
    bool release_held = false;
    std::string held_topic;
    std::string held_payload;
    /// First frame of a channel that may duplicate: install the
    /// wire-capture tap (outside the chaos lock) before sending.
    bool register_tap = false;
  };

  Decision Decide(const std::string& session, const std::string& from,
                  const std::string& to, const std::string& topic,
                  const std::string& payload) EXCLUDES(chaos_mutex_);

  /// Sends through the base while capturing the sealed wire bytes into
  /// the channel's chaos state (for duplicate injection).
  Status ForwardSend(const std::string& session, const std::string& from,
                     const std::string& to, const std::string& topic,
                     std::string payload) EXCLUDES(chaos_mutex_);

  Network* base_;
  FaultProfile profile_;
  uint64_t seed_;

  mutable Mutex chaos_mutex_;
  std::map<ChannelKey, ChannelChaos> channels_ GUARDED_BY(chaos_mutex_);
  FaultCounts counts_ GUARDED_BY(chaos_mutex_);
};

}  // namespace ppc

#endif  // PPC_NET_FAULTY_NETWORK_H_
