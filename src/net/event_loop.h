#ifndef PPC_NET_EVENT_LOOP_H_
#define PPC_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ppc {

/// A single-threaded epoll reactor: one thread multiplexes every
/// registered file descriptor (level-triggered), runs posted tasks, and
/// fires deadline timers. `TcpNetwork` drives its listener and all inbound
/// connections through one of these instead of an accept thread plus a
/// reader thread per connection — the thread count of an endpoint is now
/// constant in the number of peers and sessions.
///
/// Threading contract:
///   * `Post` is safe from any thread (it is how outside threads reach
///     the loop); the task runs on the loop thread.
///   * `Watch` / `Rearm` / `Unwatch` / `ScheduleAt` / `Cancel` must run on
///     the loop thread (i.e. from a posted task or an I/O callback) —
///     keeping all fd bookkeeping single-threaded is what makes the
///     reactor data-race-free without a lock around it.
///   * Callbacks own their fds: the loop never closes one.
///
/// Destruction stops the loop and joins the thread; pending tasks that
/// never ran are dropped.
class EventLoop {
 public:
  /// Fired with the ready `epoll` event mask (EPOLLIN, EPOLLOUT, ...).
  using IoCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  /// Creates the epoll instance, the wakeup eventfd, and starts the loop
  /// thread.
  static Result<std::unique_ptr<EventLoop>> Create();

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueues `task` for the loop thread and wakes it. Safe from any
  /// thread, including the loop thread itself. After `Stop` the task is
  /// accepted but never runs.
  void Post(Task task) EXCLUDES(post_mutex_);

  /// Registers `fd` for `events`; `callback` fires on the loop thread
  /// whenever the fd is ready. Loop thread only.
  Status Watch(int fd, uint32_t events, IoCallback callback);

  /// Changes the event mask of a watched fd. Loop thread only.
  Status Rearm(int fd, uint32_t events);

  /// Deregisters `fd` (the fd stays open — callbacks own their fds).
  /// Safe to call for an fd that is not watched. Loop thread only.
  void Unwatch(int fd);

  /// Runs `task` on the loop thread at (or shortly after) `deadline`;
  /// returns an id for `Cancel`. Loop thread only.
  uint64_t ScheduleAt(std::chrono::steady_clock::time_point deadline,
                      Task task);

  /// Cancels a scheduled timer; a no-op if it already fired. Loop thread
  /// only.
  void Cancel(uint64_t timer_id);

  /// True iff the caller is the loop thread.
  bool OnLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

  /// Stops the loop and joins the thread (idempotent; the destructor
  /// calls it). After this, posted tasks never run.
  void Stop();

 private:
  EventLoop(int epoll_fd, int wake_fd);

  void Run();
  void RunPostedTasks() EXCLUDES(post_mutex_);
  /// Fires due timers; returns the epoll timeout (ms) until the next one,
  /// or -1 when none is pending.
  int FireDueTimers();

  struct Timer {
    uint64_t id = 0;
    Task task;
  };

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Post/Stop kick epoll_wait.
  std::atomic<bool> stopping_{false};

  Mutex post_mutex_;
  std::deque<Task> posted_ GUARDED_BY(post_mutex_);

  // Loop-thread state: thread-confined, not lock-guarded — only Run()
  // and the callbacks it invokes touch these, so there is no capability
  // to annotate (see thread_annotations.h "what the analysis cannot
  // see"); the project linter instead keeps blocking receives out of
  // this file.
  std::map<int, IoCallback> watches_;
  std::multimap<std::chrono::steady_clock::time_point, Timer> timers_;
  uint64_t next_timer_id_ = 1;

  std::thread thread_;
};

}  // namespace ppc

#endif  // PPC_NET_EVENT_LOOP_H_
