#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>
#include <thread>

#include "common/serde.h"
#include "crypto/hmac.h"

namespace ppc {

namespace {

/// Connection preamble: wrong-protocol or wrong-version peers are cut off
/// before any frame parsing. "PPT3" = session-multiplexed length-prefixed
/// frames behind the mutual challenge-response handshake ("PPT2" framed
/// records without the session field; "PPT1" was the unauthenticated
/// predecessor; peers of either version are cut off here).
constexpr char kPreamble[4] = {'P', 'P', 'T', '3'};

/// Handshake direction labels — a response to one direction's challenge
/// can never be replayed for the other.
constexpr char kDialAuthLabel[] = "dial";
constexpr char kAcceptAuthLabel[] = "accept";

/// Upper bound on a single frame; anything larger is a corrupt length
/// prefix, not a protocol message (the biggest legitimate payloads are the
/// alphanumeric grid shipments, far below this).
constexpr uint32_t kMaxFrameBytes = 1u << 30;

/// Bound on frames parked for not-yet-registered parties; beyond it a
/// peer is flooding a name this endpoint will never host.
constexpr size_t kMaxUnclaimedFrames = 4096;

/// Dial-retry backoff bounds: first retry after ~kDialBackoffFloor, then
/// doubling (plus up-to-100% jitter) up to kDialBackoffCeil, so a herd of
/// daemons restarting against one listener spreads out instead of
/// re-dialing in lockstep.
constexpr std::chrono::milliseconds kDialBackoffFloor{10};
constexpr std::chrono::milliseconds kDialBackoffCeil{640};

/// Reads exactly `len` bytes from a blocking fd; false on
/// EOF/error/shutdown. (Outbound dial handshakes only — inbound reads are
/// nonblocking, driven by the event loop.)
bool ReadExact(int fd, char* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, buffer + done, len - done, 0);
    if (n == 0) return false;  // Orderly EOF.
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Writes all of `data`; false on error.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

Result<in_addr> ParseHost(const std::string& host) {
  std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, resolved.c_str(), &addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "'");
  }
  return addr;
}

void SetNoDelay(int fd) {
  // Protocol rounds are request/response over small frames; Nagle would
  // add 40ms stalls to every round trip.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Bounds blocking reads on `fd` (0 restores fully blocking reads). Used
/// only around the outbound-dial auth handshake so a silent listener
/// cannot park a sender forever; frame writes stay unbounded.
void SetRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Fresh OS-entropy challenge. Challenges never touch protocol bytes or
/// nonces, so run determinism is unaffected.
std::string RandomChallenge() {
  std::string challenge(SecureChannel::kChallengeLength, '\0');
  std::random_device entropy;
  for (size_t i = 0; i < challenge.size(); i += 4) {
    uint32_t word = entropy();
    for (size_t b = 0; b < 4 && i + b < challenge.size(); ++b) {
      challenge[i + b] = static_cast<char>((word >> (8 * b)) & 0xff);
    }
  }
  return challenge;
}

}  // namespace

Result<std::unique_ptr<TcpNetwork>> TcpNetwork::Create(
    const Options& options) {
  PPC_ASSIGN_OR_RETURN(in_addr host, ParseHost(options.listen_host));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = host;
  addr.sin_port = htons(options.listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("bind(" + options.listen_host + ":" +
                                     std::to_string(options.listen_port) +
                                     "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status = Status::Internal(std::string("getsockname(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  SetNonBlocking(fd);  // Accepts run on the event loop.

  auto loop = EventLoop::Create();
  if (!loop.ok()) {
    ::close(fd);
    return loop.status();
  }
  return std::unique_ptr<TcpNetwork>(new TcpNetwork(
      options, fd, ntohs(bound.sin_port), std::move(loop).TakeValue()));
}

TcpNetwork::TcpNetwork(const Options& options, int listen_fd,
                       uint16_t listen_port, std::unique_ptr<EventLoop> loop)
    : ChannelTransport(options.security),
      connect_timeout_(options.connect_timeout),
      listen_host_(options.listen_host == "localhost" ? "127.0.0.1"
                                                      : options.listen_host),
      auth_key_(SecureChannel::ConnectionAuthKey(options.auth_secret)),
      listen_fd_(listen_fd),
      listen_port_(listen_port),
      loop_(std::move(loop)) {
  // Registering the watch must happen on the loop thread; every member
  // the handler touches is initialized by now.
  loop_->Post([this] {
    (void)loop_->Watch(listen_fd_, EPOLLIN,
                       [this](uint32_t events) { HandleAccept(events); });
  });
}

TcpNetwork::~TcpNetwork() {
  shutting_down_.store(true, std::memory_order_release);
  {
    // Unblock senders mid-write and stop dial retries. Deliberately does
    // NOT take any write_mutex: the stuck writer holds it, and shutdown()
    // on the (atomic) fd is what releases that writer.
    MutexLock lock(conn_mutex_);
    for (auto& [addr, conn] : connections_) {
      int fd = conn->fd.load(std::memory_order_acquire);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  // Joining the loop ends all inbound I/O; after this the inbound map is
  // plain single-threaded state.
  loop_->Stop();
  for (auto& [fd, conn] : inbound_) ::close(fd);
  inbound_.clear();
  ::close(listen_fd_);
  {
    MutexLock lock(conn_mutex_);
    for (auto& [addr, conn] : connections_) {
      // exchange() so a sender's error path and this teardown can never
      // both close one fd.
      int fd = conn->fd.exchange(-1, std::memory_order_acq_rel);
      if (fd >= 0) ::close(fd);
    }
    connections_.clear();
  }
}

void TcpNetwork::HandleAccept(uint32_t /*events*/) {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient conditions (a peer resetting before accept runs —
      // ECONNABORTED — or fd-table pressure) must not kill the listener:
      // a deaf listener deadlocks every later protocol round. Mask the
      // watch briefly so a persistent error cannot spin the loop.
      (void)loop_->Rearm(listen_fd_, 0);
      loop_->ScheduleAt(
          std::chrono::steady_clock::now() + std::chrono::milliseconds(10),
          [this] { (void)loop_->Rearm(listen_fd_, EPOLLIN); });
      return;
    }
    SetNoDelay(fd);
    auto conn = std::make_unique<InboundConn>();
    conn->fd = fd;
    // A dialer that never completes the handshake is dropped at the
    // deadline — it cannot hold connection state forever.
    conn->handshake_timer = loop_->ScheduleAt(
        std::chrono::steady_clock::now() + connect_timeout_, [this, fd] {
          auto it = inbound_.find(fd);
          if (it != inbound_.end() &&
              it->second->phase != InboundConn::Phase::kFrames) {
            DropConn(fd);
          }
        });
    InboundConn* raw = conn.get();
    inbound_.emplace(fd, std::move(conn));
    Status watched = loop_->Watch(
        fd, EPOLLIN, [this, fd](uint32_t events) { HandleConnIo(fd, events); });
    if (!watched.ok()) {
      loop_->Cancel(raw->handshake_timer);
      inbound_.erase(fd);
      ::close(fd);
    }
  }
}

void TcpNetwork::HandleConnIo(int fd, uint32_t events) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  InboundConn* conn = it->second.get();

  if ((events & EPOLLOUT) != 0 && !FlushConn(conn)) {
    DropConn(fd);
    return;
  }

  bool peer_closed = false;
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
    char buffer[64 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        conn->inbuf.append(buffer, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer_closed = true;  // Hard socket error; parse what arrived, drop.
      break;
    }
  }

  if (!AdvanceConn(conn) || peer_closed) DropConn(fd);
}

bool TcpNetwork::FlushConn(InboundConn* conn) {
  while (!conn->outbuf.empty()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data(), conn->outbuf.size(),
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return loop_->Rearm(conn->fd, EPOLLIN | EPOLLOUT).ok();
      }
      return false;
    }
    conn->outbuf.erase(0, static_cast<size_t>(n));
  }
  return loop_->Rearm(conn->fd, EPOLLIN).ok();
}

bool TcpNetwork::AdvanceConn(InboundConn* conn) {
  size_t pos = 0;
  const std::string& buf = conn->inbuf;

  if (conn->phase == InboundConn::Phase::kAwaitHello) {
    const size_t hello_size =
        sizeof(kPreamble) + SecureChannel::kChallengeLength;
    if (buf.size() < hello_size) return true;  // Need more bytes.
    if (std::memcmp(buf.data(), kPreamble, sizeof(kPreamble)) != 0) {
      return false;  // Wrong protocol or version.
    }
    const std::string dialer_challenge =
        buf.substr(sizeof(kPreamble), SecureChannel::kChallengeLength);
    pos = hello_size;
    conn->acceptor_challenge = RandomChallenge();
    conn->outbuf +=
        conn->acceptor_challenge +
        SecureChannel::ConnectionAuthResponse(auth_key_, kDialAuthLabel,
                                              dialer_challenge);
    conn->phase = InboundConn::Phase::kAwaitResponse;
    if (!FlushConn(conn)) return false;
  }

  if (conn->phase == InboundConn::Phase::kAwaitResponse) {
    if (buf.size() - pos < SecureChannel::kMacLength) {
      conn->inbuf.erase(0, pos);
      return true;
    }
    const std::string response = buf.substr(pos, SecureChannel::kMacLength);
    pos += SecureChannel::kMacLength;
    if (!HmacSha256::Verify(
            SecureChannel::ConnectionAuthResponse(
                auth_key_, kAcceptAuthLabel, conn->acceptor_challenge),
            response)) {
      return false;  // Wrong secret: drop the connection, no frame read.
    }
    loop_->Cancel(conn->handshake_timer);
    conn->phase = InboundConn::Phase::kFrames;
  }

  // Authenticated: drain every complete length-prefixed frame. The buffer
  // only ever holds bytes the peer actually sent, so a lying 1 GiB length
  // prefix costs the peer its connection, not this process an allocation.
  while (buf.size() - pos >= 4) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(
                 static_cast<unsigned char>(buf[pos + static_cast<size_t>(i)]))
             << (8 * i);
    }
    if (len == 0 || len > kMaxFrameBytes) return false;
    if (buf.size() - pos - 4 < len) break;  // Frame still in flight.

    const std::string body = buf.substr(pos + 4, len);
    pos += 4 + static_cast<size_t>(len);

    ByteReader reader(body);
    auto from = reader.ReadBytes();
    auto to = reader.ReadBytes();
    auto topic = reader.ReadBytes();
    auto session = reader.ReadBytes();
    auto wire = reader.ReadBytes();
    if (!from.ok() || !to.ok() || !topic.ok() || !session.ok() ||
        !wire.ok() || !reader.AtEnd()) {
      return false;  // Framing is broken; drop the peer.
    }
    Deliver(Message{std::move(*from), std::move(*to), std::move(*topic),
                    std::move(*wire), std::move(*session)});
  }
  conn->inbuf.erase(0, pos);
  return true;
}

void TcpNetwork::DropConn(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  loop_->Cancel(it->second->handshake_timer);
  loop_->Unwatch(fd);
  ::close(fd);
  inbound_.erase(it);
}

void TcpNetwork::Deliver(Message message) {
  Endpoint* endpoint = nullptr;
  {
    MutexLock lock(registry_mutex_);
    auto it = parties_.find(message.to);
    if (it == parties_.end()) {
      // The receiver has not registered (yet): in a multi-process launch
      // a fast peer's first frames can beat the local RegisterParty call.
      // Park them; RegisterParty drains the stash in arrival order.
      size_t parked = unclaimed_frames_.load(std::memory_order_relaxed);
      if (parked >= kMaxUnclaimedFrames) {
        dropped_frames_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      unclaimed_[message.to].push_back(std::move(message));
      unclaimed_frames_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    endpoint = it->second.get();
  }
  DeliverLocal(endpoint, std::move(message));
}

Status TcpNetwork::RegisterParty(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  Endpoint* endpoint = nullptr;
  {
    MutexLock lock(registry_mutex_);
    if (remotes_.count(name) != 0) {
      return Status::AlreadyExists("party '" + name +
                                   "' already known as remote");
    }
    auto [it, inserted] = parties_.try_emplace(name);
    if (!inserted) {
      return Status::AlreadyExists("party '" + name + "' already registered");
    }
    it->second = std::make_unique<Endpoint>();
    endpoint = it->second.get();
    // Hand over frames that arrived before this registration. Still under
    // the registry lock, so no new arrival can slip between the drain and
    // the endpoint becoming visible — per-channel FIFO is preserved
    // (lock order registry -> endpoint matches Deliver's).
    auto parked = unclaimed_.find(name);
    if (parked != unclaimed_.end()) {
      MutexLock queue_lock(endpoint->mutex);
      for (Message& message : parked->second) {
        endpoint->queues[std::make_pair(message.session, message.from)]
            .push_back(std::move(message));
        unclaimed_frames_.fetch_sub(1, std::memory_order_relaxed);
      }
      unclaimed_.erase(parked);
    }
  }
  endpoint->arrival.NotifyAll();
  return Status::OK();
}

Status TcpNetwork::AddRemoteParty(const std::string& name,
                                  const std::string& host, uint16_t port) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  PPC_RETURN_IF_ERROR(ParseHost(host).status());
  MutexLock lock(registry_mutex_);
  if (parties_.count(name) != 0) {
    return Status::AlreadyExists("party '" + name +
                                 "' already registered locally");
  }
  auto [it, inserted] = remotes_.try_emplace(name, RemoteAddress{host, port});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("remote party '" + name +
                                 "' already registered");
  }
  return Status::OK();
}

bool TcpNetwork::HasParty(const std::string& name) const {
  MutexLock lock(registry_mutex_);
  return parties_.count(name) != 0 || remotes_.count(name) != 0;
}

Status TcpNetwork::ResolveRoute(const std::string& session,
                                const std::string& from, const std::string& to,
                                std::string* dest_addr,
                                ChannelState** channel) {
  MutexLock lock(registry_mutex_);
  if (parties_.find(from) == parties_.end()) {
    return Status::NotFound("unknown sender '" + from + "'");
  }
  if (parties_.count(to) != 0) {
    // Hosted here: loop the frame through our own listener so local and
    // remote parties are indistinguishable on the wire. Dial the bound
    // interface (a wildcard bind is reachable via loopback).
    *dest_addr = (listen_host_ == "0.0.0.0" ? "127.0.0.1" : listen_host_) +
                 ":" + std::to_string(listen_port_);
  } else if (auto it = remotes_.find(to); it != remotes_.end()) {
    *dest_addr = it->second.host + ":" + std::to_string(it->second.port);
  } else {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  if (channel != nullptr) *channel = ChannelForLocked(session, from, to);
  return Status::OK();
}

Status TcpNetwork::WriteFrame(const std::string& dest_addr,
                              const std::string& session,
                              const std::string& from, const std::string& to,
                              const std::string& topic,
                              const std::string& wire) {
  // Get or dial the pooled connection for this destination endpoint —
  // shared by every session sending there.
  Connection* conn = nullptr;
  {
    MutexLock lock(conn_mutex_);
    auto& slot = connections_[dest_addr];
    if (!slot) slot = std::make_unique<Connection>();
    conn = slot.get();
  }

  ByteWriter body;
  body.WriteBytes(from);
  body.WriteBytes(to);
  body.WriteBytes(topic);
  body.WriteBytes(session);
  body.WriteBytes(wire);
  if (body.size() > kMaxFrameBytes) {
    // Mirror the receiver's limit: past it the peer would drop the whole
    // connection (and past u32 range the length prefix would wrap), so
    // fail the send loudly instead.
    return Status::InvalidArgument(
        "frame of " + std::to_string(body.size()) +
        " bytes exceeds the transport's frame limit (" +
        std::to_string(kMaxFrameBytes) + ")");
  }
  ByteWriter framed;
  framed.WriteU32(static_cast<uint32_t>(body.size()));
  const std::string& payload = body.bytes();

  MutexLock write_lock(conn->write_mutex);
  int sock = conn->fd.load(std::memory_order_acquire);
  if (sock < 0) {
    // Dial, retrying refused connections until the deadline: in a
    // multi-process launch the peer may not have bound its listener yet.
    size_t colon = dest_addr.rfind(':');
    PPC_ASSIGN_OR_RETURN(in_addr host, ParseHost(dest_addr.substr(0, colon)));
    int port = std::stoi(dest_addr.substr(colon + 1));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = host;
    addr.sin_port = htons(static_cast<uint16_t>(port));

    const auto deadline = std::chrono::steady_clock::now() + connect_timeout_;
    // Capped exponential backoff with jitter between retries; the jitter
    // source is per-dial and never touches protocol bytes.
    std::chrono::milliseconds backoff = kDialBackoffFloor;
    std::minstd_rand jitter_rng(std::random_device{}());
    for (;;) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        return Status::Internal(std::string("socket(): ") +
                                std::strerror(errno));
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        SetNoDelay(fd);
        // Mutual challenge-response: prove knowledge of the shared secret
        // to the listener, and require the same proof back before any
        // protocol frame leaves this process.
        const std::string dialer_challenge = RandomChallenge();
        const std::string hello =
            std::string(kPreamble, sizeof(kPreamble)) + dialer_challenge;
        if (!WriteAll(fd, hello.data(), hello.size())) {
          ::close(fd);
          return Status::Internal("tcp preamble write to " + dest_addr +
                                  " failed");
        }
        SetRecvTimeout(fd, connect_timeout_);
        std::string greeting(
            SecureChannel::kChallengeLength + SecureChannel::kMacLength,
            '\0');
        if (!ReadExact(fd, greeting.data(), greeting.size())) {
          ::close(fd);
          return Status::PermissionDenied(
              "listener at " + dest_addr +
              " did not answer the connection-auth challenge");
        }
        const std::string acceptor_challenge =
            greeting.substr(0, SecureChannel::kChallengeLength);
        const std::string acceptor_response =
            greeting.substr(SecureChannel::kChallengeLength);
        if (!HmacSha256::Verify(
                SecureChannel::ConnectionAuthResponse(
                    auth_key_, kDialAuthLabel, dialer_challenge),
                acceptor_response)) {
          ::close(fd);
          return Status::PermissionDenied(
              "listener at " + dest_addr +
              " failed the connection-auth challenge (wrong secret?)");
        }
        const std::string response = SecureChannel::ConnectionAuthResponse(
            auth_key_, kAcceptAuthLabel, acceptor_challenge);
        if (!WriteAll(fd, response.data(), response.size())) {
          ::close(fd);
          return Status::Internal("tcp auth response write to " + dest_addr +
                                  " failed");
        }
        SetRecvTimeout(fd, std::chrono::milliseconds(0));
        conn->fd.store(fd, std::memory_order_release);
        sock = fd;
        break;
      }
      int saved = errno;
      ::close(fd);
      const auto now = std::chrono::steady_clock::now();
      if ((saved == ECONNREFUSED || saved == ETIMEDOUT) && now < deadline &&
          !shutting_down_.load(std::memory_order_acquire)) {
        auto jitter = std::chrono::milliseconds(
            std::uniform_int_distribution<int64_t>(0, backoff.count())(
                jitter_rng));
        auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now);
        std::this_thread::sleep_for(
            std::min(backoff + jitter, std::max(remaining,
                                                std::chrono::milliseconds(1))));
        backoff = std::min(backoff * 2, kDialBackoffCeil);
        continue;
      }
      return Status::Internal("connect(" + dest_addr +
                              "): " + std::strerror(saved));
    }
  }
  if (!WriteAll(sock, framed.bytes().data(), framed.bytes().size()) ||
      !WriteAll(sock, payload.data(), payload.size())) {
    const int saved = errno;  // close() below may clobber it.
    // The connection is dead; drop it so a later send can re-dial.
    // exchange() so this path and the destructor's teardown can never
    // both close the fd (the destructor shuts the socket down to unblock
    // this very write, then races here).
    int dead = conn->fd.exchange(-1, std::memory_order_acq_rel);
    if (dead >= 0) ::close(dead);
    // Typed as kUnavailable: the peer (or the path to it) is gone right
    // now. The in-flight frame is NOT retried — the sender decides. The
    // next send to this destination re-dials with the capped-backoff
    // loop above and re-runs the HMAC handshake; channel nonce counters
    // live above the connection, so the re-dialed connection continues
    // the monotone nonce sequence and replays nothing.
    return Status::Unavailable("tcp write to " + dest_addr + " failed (" +
                               std::strerror(saved) +
                               "): peer connection lost");
  }
  return Status::OK();
}

void TcpNetwork::DropEstablishedConnectionsForTesting() {
  // shutdown(), not close(): in-flight writers still own the fd, and a
  // close here could race a concurrent write onto a recycled descriptor.
  // The shutdown makes their next write fail, which funnels them through
  // WriteFrame's exchange(-1)-and-close path — the same path a peer
  // crash exercises.
  MutexLock lock(conn_mutex_);
  for (auto& [addr, conn] : connections_) {
    int fd = conn->fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

Status TcpNetwork::SendOn(const std::string& session, const std::string& from,
                          const std::string& to, const std::string& topic,
                          std::string payload) {
  std::string dest_addr;
  ChannelState* channel = nullptr;
  PPC_RETURN_IF_ERROR(ResolveRoute(session, from, to, &dest_addr, &channel));
  PPC_ASSIGN_OR_RETURN(
      std::string wire,
      PrepareFrame(session, from, to, topic, payload, channel));
  return WriteFrame(dest_addr, session, from, to, topic, wire);
}

Status TcpNetwork::InjectFrameOn(const std::string& session,
                                 const std::string& from,
                                 const std::string& to,
                                 const std::string& topic,
                                 std::string wire_bytes) {
  std::string dest_addr;
  PPC_RETURN_IF_ERROR(ResolveRoute(session, from, to, &dest_addr, nullptr));
  // Raw bytes straight onto the wire: no sealing, no accounting, no taps —
  // the receiver's integrity checks are the subject under test.
  return WriteFrame(dest_addr, session, from, to, topic, wire_bytes);
}

}  // namespace ppc
