#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>

#include "common/serde.h"
#include "crypto/hmac.h"

namespace ppc {

namespace {

/// Connection preamble: wrong-protocol or wrong-version peers are cut off
/// before any frame parsing. "PPT2" = length-prefixed frames behind the
/// mutual challenge-response handshake ("PPT1" was the unauthenticated
/// predecessor; a v1 peer is cut off here).
constexpr char kPreamble[4] = {'P', 'P', 'T', '2'};

/// Handshake direction labels — a response to one direction's challenge
/// can never be replayed for the other.
constexpr char kDialAuthLabel[] = "dial";
constexpr char kAcceptAuthLabel[] = "accept";

/// Upper bound on a single frame; anything larger is a corrupt length
/// prefix, not a protocol message (the biggest legitimate payloads are the
/// alphanumeric grid shipments, far below this).
constexpr uint32_t kMaxFrameBytes = 1u << 30;

/// Bound on frames parked for not-yet-registered parties; beyond it a
/// peer is flooding a name this endpoint will never host.
constexpr size_t kMaxUnclaimedFrames = 4096;

/// Reads exactly `len` bytes; false on EOF/error/shutdown.
bool ReadExact(int fd, char* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, buffer + done, len - done, 0);
    if (n == 0) return false;  // Orderly EOF.
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Writes all of `data`; false on error.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

Result<in_addr> ParseHost(const std::string& host) {
  std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, resolved.c_str(), &addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "'");
  }
  return addr;
}

void SetNoDelay(int fd) {
  // Protocol rounds are request/response over small frames; Nagle would
  // add 40ms stalls to every round trip.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Bounds blocking reads on `fd` (0 restores fully blocking reads). Used
/// only around the auth handshake so a silent peer cannot park a thread
/// forever; frame reads stay unbounded (idle protocol connections are
/// legitimate).
void SetRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Fresh OS-entropy challenge. Challenges never touch protocol bytes or
/// nonces, so run determinism is unaffected.
std::string RandomChallenge() {
  std::string challenge(SecureChannel::kChallengeLength, '\0');
  std::random_device entropy;
  for (size_t i = 0; i < challenge.size(); i += 4) {
    uint32_t word = entropy();
    for (size_t b = 0; b < 4 && i + b < challenge.size(); ++b) {
      challenge[i + b] = static_cast<char>((word >> (8 * b)) & 0xff);
    }
  }
  return challenge;
}

}  // namespace

Result<std::unique_ptr<TcpNetwork>> TcpNetwork::Create(
    const Options& options) {
  PPC_ASSIGN_OR_RETURN(in_addr host, ParseHost(options.listen_host));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = host;
  addr.sin_port = htons(options.listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("bind(" + options.listen_host + ":" +
                                     std::to_string(options.listen_port) +
                                     "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status = Status::Internal(std::string("getsockname(): ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpNetwork>(
      new TcpNetwork(options, fd, ntohs(bound.sin_port)));
}

TcpNetwork::TcpNetwork(const Options& options, int listen_fd,
                       uint16_t listen_port)
    : ChannelTransport(options.security),
      connect_timeout_(options.connect_timeout),
      listen_host_(options.listen_host == "localhost" ? "127.0.0.1"
                                                      : options.listen_host),
      auth_key_(SecureChannel::ConnectionAuthKey(options.auth_secret)),
      listen_fd_(listen_fd),
      listen_port_(listen_port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

TcpNetwork::~TcpNetwork() {
  shutting_down_.store(true, std::memory_order_release);
  // Unblock accept(); readers are unblocked by shutting their fds down.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(reader_mutex_);
    // Finished readers already closed their fd; the kernel may have
    // recycled the number for an unrelated socket, so only sweep fds
    // whose reader is still live.
    for (const auto& [fd, thread] : readers_) {
      (void)thread;
      if (std::find(finished_fds_.begin(), finished_fds_.end(), fd) ==
          finished_fds_.end()) {
        ::shutdown(fd, SHUT_RDWR);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& [addr, conn] : connections_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Readers exit on the shutdown and close their own fds; join them all
    // (the map can only shrink now that the accept thread is gone).
    std::map<int, std::thread> readers;
    {
      std::lock_guard<std::mutex> lock(reader_mutex_);
      readers.swap(readers_);
      finished_fds_.clear();
    }
    for (auto& [fd, thread] : readers) thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& [addr, conn] : connections_) ::close(conn->fd);
    connections_.clear();
  }
  ::close(listen_fd_);
}

void TcpNetwork::ReapFinishedReadersLocked() {
  for (int fd : finished_fds_) {
    auto it = readers_.find(fd);
    if (it == readers_.end()) continue;
    // The reader registered completion as its last act before returning;
    // this join waits out only its final epilogue.
    it->second.join();
    readers_.erase(it);
  }
  finished_fds_.clear();
}

void TcpNetwork::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (shutting_down_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      // Transient conditions (a peer resetting before accept runs —
      // ECONNABORTED — or fd-table pressure) must not kill the accept
      // loop: a deaf listener deadlocks every later protocol round. The
      // brief sleep keeps a persistent error from spinning the thread.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    SetNoDelay(fd);
    // Registration and the shutdown check share reader_mutex_: either the
    // destructor's shutdown sweep sees this fd, or we see shutting_down_
    // here — a reader can never outlive the sweep unobserved.
    std::lock_guard<std::mutex> lock(reader_mutex_);
    if (shutting_down_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    // Long-lived endpoints see peers come and go; reclaim completed
    // readers (and their closed fds) instead of accumulating them.
    ReapFinishedReadersLocked();
    readers_.emplace(fd, std::thread([this, fd] { ReaderLoop(fd); }));
  }
}

void TcpNetwork::ReaderLoop(int fd) {
  ReaderLoopBody(fd);
  // Single exit point: release the fd and hand the thread to the reaper.
  // Closing under reader_mutex_ keeps the destructor's shutdown sweep
  // from racing a concurrent close (and a recycled fd number is re-added
  // to readers_ under the same lock by the accept loop).
  std::lock_guard<std::mutex> lock(reader_mutex_);
  ::close(fd);
  finished_fds_.push_back(fd);
}

void TcpNetwork::ReaderLoopBody(int fd) {
  // Challenge-response handshake before any frame is accepted: the dialer
  // must answer our challenge under the shared connection-auth key. The
  // recv timeout bounds every handshake read so a silent or stalling
  // dialer cannot park this thread; it is lifted for the frame loop.
  SetRecvTimeout(fd, connect_timeout_);
  char preamble[sizeof(kPreamble)];
  if (!ReadExact(fd, preamble, sizeof(preamble)) ||
      std::memcmp(preamble, kPreamble, sizeof(kPreamble)) != 0) {
    return;
  }
  std::string dialer_challenge(SecureChannel::kChallengeLength, '\0');
  if (!ReadExact(fd, dialer_challenge.data(), dialer_challenge.size())) {
    return;
  }
  const std::string acceptor_challenge = RandomChallenge();
  const std::string greeting =
      acceptor_challenge + SecureChannel::ConnectionAuthResponse(
                               auth_key_, kDialAuthLabel, dialer_challenge);
  if (!WriteAll(fd, greeting.data(), greeting.size())) return;
  std::string dialer_response(SecureChannel::kMacLength, '\0');
  if (!ReadExact(fd, dialer_response.data(), dialer_response.size())) return;
  if (!HmacSha256::Verify(
          SecureChannel::ConnectionAuthResponse(auth_key_, kAcceptAuthLabel,
                                                acceptor_challenge),
          dialer_response)) {
    return;  // Wrong secret: drop the connection, no frame was read.
  }
  SetRecvTimeout(fd, std::chrono::milliseconds(0));
  for (;;) {
    char len_bytes[4];
    if (!ReadExact(fd, len_bytes, sizeof(len_bytes))) return;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<unsigned char>(len_bytes[i]))
             << (8 * i);
    }
    if (len == 0 || len > kMaxFrameBytes) return;

    // Grow the buffer with the bytes actually received instead of
    // trusting the prefix: a lying 1 GiB length costs the peer its
    // connection, not this process a 1 GiB allocation.
    std::string body;
    while (body.size() < len) {
      size_t chunk = std::min<size_t>(len - body.size(), 256 * 1024);
      size_t offset = body.size();
      body.resize(offset + chunk);
      if (!ReadExact(fd, body.data() + offset, chunk)) return;
    }

    ByteReader reader(body);
    auto from = reader.ReadBytes();
    auto to = reader.ReadBytes();
    auto topic = reader.ReadBytes();
    auto wire = reader.ReadBytes();
    if (!from.ok() || !to.ok() || !topic.ok() || !wire.ok() ||
        !reader.AtEnd()) {
      return;  // Framing is broken; drop the peer.
    }
    Deliver(Message{std::move(*from), std::move(*to), std::move(*topic),
                    std::move(*wire)});
  }
}

void TcpNetwork::Deliver(Message message) {
  Endpoint* endpoint = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = parties_.find(message.to);
    if (it == parties_.end()) {
      // The receiver has not registered (yet): in a multi-process launch
      // a fast peer's first frames can beat the local RegisterParty call.
      // Park them; RegisterParty drains the stash in arrival order.
      size_t parked = unclaimed_frames_.load(std::memory_order_relaxed);
      if (parked >= kMaxUnclaimedFrames) {
        dropped_frames_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      unclaimed_[message.to].push_back(std::move(message));
      unclaimed_frames_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    endpoint = it->second.get();
  }
  DeliverLocal(endpoint, std::move(message));
}

Status TcpNetwork::RegisterParty(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  Endpoint* endpoint = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    if (remotes_.count(name) != 0) {
      return Status::AlreadyExists("party '" + name +
                                   "' already known as remote");
    }
    auto [it, inserted] = parties_.try_emplace(name);
    if (!inserted) {
      return Status::AlreadyExists("party '" + name + "' already registered");
    }
    it->second = std::make_unique<Endpoint>();
    endpoint = it->second.get();
    // Hand over frames that arrived before this registration. Still under
    // the registry lock, so no new arrival can slip between the drain and
    // the endpoint becoming visible — per-channel FIFO is preserved
    // (lock order registry -> endpoint matches Deliver's).
    auto parked = unclaimed_.find(name);
    if (parked != unclaimed_.end()) {
      std::lock_guard<std::mutex> queue_lock(endpoint->mutex);
      for (Message& message : parked->second) {
        endpoint->queues[message.from].push_back(std::move(message));
        unclaimed_frames_.fetch_sub(1, std::memory_order_relaxed);
      }
      unclaimed_.erase(parked);
    }
  }
  endpoint->arrival.notify_all();
  return Status::OK();
}

Status TcpNetwork::AddRemoteParty(const std::string& name,
                                  const std::string& host, uint16_t port) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  PPC_RETURN_IF_ERROR(ParseHost(host).status());
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (parties_.count(name) != 0) {
    return Status::AlreadyExists("party '" + name +
                                 "' already registered locally");
  }
  auto [it, inserted] = remotes_.try_emplace(name, RemoteAddress{host, port});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("remote party '" + name +
                                 "' already registered");
  }
  return Status::OK();
}

bool TcpNetwork::HasParty(const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return parties_.count(name) != 0 || remotes_.count(name) != 0;
}

Status TcpNetwork::ResolveRoute(const std::string& from, const std::string& to,
                                std::string* dest_addr,
                                ChannelState** channel) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (parties_.find(from) == parties_.end()) {
    return Status::NotFound("unknown sender '" + from + "'");
  }
  if (parties_.count(to) != 0) {
    // Hosted here: loop the frame through our own listener so local and
    // remote parties are indistinguishable on the wire. Dial the bound
    // interface (a wildcard bind is reachable via loopback).
    *dest_addr = (listen_host_ == "0.0.0.0" ? "127.0.0.1" : listen_host_) +
                 ":" + std::to_string(listen_port_);
  } else if (auto it = remotes_.find(to); it != remotes_.end()) {
    *dest_addr = it->second.host + ":" + std::to_string(it->second.port);
  } else {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  if (channel != nullptr) *channel = ChannelForLocked(from, to);
  return Status::OK();
}

Status TcpNetwork::WriteFrame(const std::string& dest_addr,
                              const std::string& from, const std::string& to,
                              const std::string& topic,
                              const std::string& wire) {
  // Get or dial the connection for this destination endpoint.
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    auto& slot = connections_[dest_addr];
    if (!slot) slot = std::make_unique<Connection>();
    conn = slot.get();
  }

  ByteWriter body;
  body.WriteBytes(from);
  body.WriteBytes(to);
  body.WriteBytes(topic);
  body.WriteBytes(wire);
  if (body.size() > kMaxFrameBytes) {
    // Mirror the receiver's limit: past it the peer would drop the whole
    // connection (and past u32 range the length prefix would wrap), so
    // fail the send loudly instead.
    return Status::InvalidArgument(
        "frame of " + std::to_string(body.size()) +
        " bytes exceeds the transport's frame limit (" +
        std::to_string(kMaxFrameBytes) + ")");
  }
  ByteWriter framed;
  framed.WriteU32(static_cast<uint32_t>(body.size()));
  const std::string& payload = body.bytes();

  std::lock_guard<std::mutex> write_lock(conn->write_mutex);
  if (conn->fd < 0) {
    // Dial, retrying refused connections until the deadline: in a
    // multi-process launch the peer may not have bound its listener yet.
    size_t colon = dest_addr.rfind(':');
    PPC_ASSIGN_OR_RETURN(in_addr host, ParseHost(dest_addr.substr(0, colon)));
    int port = std::stoi(dest_addr.substr(colon + 1));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = host;
    addr.sin_port = htons(static_cast<uint16_t>(port));

    const auto deadline = std::chrono::steady_clock::now() + connect_timeout_;
    for (;;) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        return Status::Internal(std::string("socket(): ") +
                                std::strerror(errno));
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        SetNoDelay(fd);
        // Mutual challenge-response: prove knowledge of the shared secret
        // to the listener, and require the same proof back before any
        // protocol frame leaves this process.
        const std::string dialer_challenge = RandomChallenge();
        const std::string hello =
            std::string(kPreamble, sizeof(kPreamble)) + dialer_challenge;
        if (!WriteAll(fd, hello.data(), hello.size())) {
          ::close(fd);
          return Status::Internal("tcp preamble write to " + dest_addr +
                                  " failed");
        }
        SetRecvTimeout(fd, connect_timeout_);
        std::string greeting(
            SecureChannel::kChallengeLength + SecureChannel::kMacLength,
            '\0');
        if (!ReadExact(fd, greeting.data(), greeting.size())) {
          ::close(fd);
          return Status::PermissionDenied(
              "listener at " + dest_addr +
              " did not answer the connection-auth challenge");
        }
        const std::string acceptor_challenge =
            greeting.substr(0, SecureChannel::kChallengeLength);
        const std::string acceptor_response =
            greeting.substr(SecureChannel::kChallengeLength);
        if (!HmacSha256::Verify(
                SecureChannel::ConnectionAuthResponse(
                    auth_key_, kDialAuthLabel, dialer_challenge),
                acceptor_response)) {
          ::close(fd);
          return Status::PermissionDenied(
              "listener at " + dest_addr +
              " failed the connection-auth challenge (wrong secret?)");
        }
        const std::string response = SecureChannel::ConnectionAuthResponse(
            auth_key_, kAcceptAuthLabel, acceptor_challenge);
        if (!WriteAll(fd, response.data(), response.size())) {
          ::close(fd);
          return Status::Internal("tcp auth response write to " + dest_addr +
                                  " failed");
        }
        SetRecvTimeout(fd, std::chrono::milliseconds(0));
        conn->fd = fd;
        break;
      }
      int saved = errno;
      ::close(fd);
      if ((saved == ECONNREFUSED || saved == ETIMEDOUT) &&
          std::chrono::steady_clock::now() < deadline &&
          !shutting_down_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return Status::Internal("connect(" + dest_addr +
                              "): " + std::strerror(saved));
    }
  }
  if (!WriteAll(conn->fd, framed.bytes().data(), framed.bytes().size()) ||
      !WriteAll(conn->fd, payload.data(), payload.size())) {
    const int saved = errno;  // close() below may clobber it.
    // The connection is dead; drop it so a later send can re-dial.
    ::close(conn->fd);
    conn->fd = -1;
    return Status::Internal("tcp write to " + dest_addr + " failed: " +
                            std::strerror(saved));
  }
  return Status::OK();
}

Status TcpNetwork::Send(const std::string& from, const std::string& to,
                        const std::string& topic, std::string payload) {
  std::string dest_addr;
  ChannelState* channel = nullptr;
  PPC_RETURN_IF_ERROR(ResolveRoute(from, to, &dest_addr, &channel));
  PPC_ASSIGN_OR_RETURN(std::string wire,
                       PrepareFrame(from, to, topic, payload, channel));
  return WriteFrame(dest_addr, from, to, topic, wire);
}

Status TcpNetwork::InjectFrame(const std::string& from, const std::string& to,
                               const std::string& topic,
                               std::string wire_bytes) {
  std::string dest_addr;
  PPC_RETURN_IF_ERROR(ResolveRoute(from, to, &dest_addr, nullptr));
  // Raw bytes straight onto the wire: no sealing, no accounting, no taps —
  // the receiver's integrity checks are the subject under test.
  return WriteFrame(dest_addr, from, to, topic, wire_bytes);
}

}  // namespace ppc
