#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace ppc {

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::Internal(std::string("epoll_create1(): ") +
                            std::strerror(errno));
  }
  int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    Status status = Status::Internal(std::string("eventfd(): ") +
                                     std::strerror(errno));
    ::close(epoll_fd);
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    Status status = Status::Internal(std::string("epoll_ctl(wakeup): ") +
                                     std::strerror(errno));
    ::close(wake_fd);
    ::close(epoll_fd);
    return status;
  }
  return std::unique_ptr<EventLoop>(new EventLoop(epoll_fd, wake_fd));
}

EventLoop::EventLoop(int epoll_fd, int wake_fd)
    : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {
  thread_ = std::thread([this] { Run(); });
}

EventLoop::~EventLoop() {
  Stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    uint64_t one = 1;
    // A full eventfd counter cannot happen here (one pending wakeup is
    // enough to observe stopping_), so a short write is not retried.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable() && !OnLoopThread()) thread_.join();
}

void EventLoop::Post(Task task) {
  {
    MutexLock lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

Status EventLoop::Watch(int fd, uint32_t events, IoCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(add): ") +
                            std::strerror(errno));
  }
  watches_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::Rearm(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(mod): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Unwatch(int fd) {
  if (watches_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

uint64_t EventLoop::ScheduleAt(std::chrono::steady_clock::time_point deadline,
                               Task task) {
  uint64_t id = next_timer_id_++;
  timers_.emplace(deadline, Timer{id, std::move(task)});
  return id;
}

void EventLoop::Cancel(uint64_t timer_id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == timer_id) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::RunPostedTasks() {
  // Swap the queue out under the lock, run outside it: a task may Post.
  std::deque<Task> tasks;
  {
    MutexLock lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (Task& task : tasks) task();
}

int EventLoop::FireDueTimers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    // Extract before firing: the task may add or cancel timers.
    Task task = std::move(timers_.begin()->second.task);
    timers_.erase(timers_.begin());
    task();
  }
  if (timers_.empty()) return -1;
  auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                  timers_.begin()->first - std::chrono::steady_clock::now())
                  .count();
  if (wait < 1) return 1;  // Due now-ish: come back immediately-ish.
  return static_cast<int>(std::min<int64_t>(wait, 60'000));
}

void EventLoop::Run() {
  std::vector<epoll_event> events(64);
  for (;;) {
    RunPostedTasks();
    if (stopping_.load(std::memory_order_acquire)) return;
    int timeout_ms = FireDueTimers();
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself failed; nothing sane left to do.
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      // The callback may Unwatch any fd (including its own) — re-resolve
      // and skip fds whose watch vanished earlier this batch.
      auto it = watches_.find(fd);
      if (it == watches_.end()) continue;
      // Copy: the callback may Unwatch(fd), destroying the stored one.
      IoCallback callback = it->second;
      callback(events[i].events);
    }
  }
}

}  // namespace ppc
