#ifndef PPC_NET_TCP_NETWORK_H_
#define PPC_NET_TCP_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/channel_transport.h"
#include "net/event_loop.h"
#include "net/secure_channel.h"

namespace ppc {

/// TCP `Network` backend: the paper's deployment for real — each OS
/// process hosts one (or more) parties, and frames travel over
/// loopback/BSD sockets instead of in-process queues.
///
/// One `TcpNetwork` instance is one transport endpoint: it listens on
/// `Options::listen_host:listen_port`, hosts the parties registered via
/// `RegisterParty`, and knows how to reach remote parties added with
/// `AddRemoteParty`. Every frame — including frames between two parties
/// hosted on the *same* instance — crosses a real TCP connection, so a
/// single-process run over this backend still exercises the exact bytes a
/// multi-machine deployment would ship.
///
/// Wire format per connection: a 4-byte preamble "PPT3" followed by a
/// mutual HMAC challenge-response handshake over a key derived from
/// `Options::auth_secret` (dialer sends its 16-byte challenge with the
/// preamble; the acceptor answers with its own challenge plus the
/// response; the dialer verifies and responds in turn — distinct
/// direction labels prevent reflection). No frame is accepted, in either
/// direction, before the peer proves knowledge of the shared secret, so
/// arbitrary processes can no longer attach to a listener. Then
/// length-prefixed frames (u32 little-endian byte count, then a serde
/// record: from, to, topic, session, wire bytes). The session field is
/// what multiplexes N concurrent logical clustering sessions over the one
/// authenticated connection per endpoint pair — this connection pool is
/// shared by every session. The wire bytes themselves carry the same
/// per-(session, directed channel) AES-128-CTR + HMAC framing as
/// `InMemoryNetwork` (both inherit it from `ChannelTransport` /
/// `SecureChannel`), so captures, byte accounting and the eavesdropping
/// experiments are identical across backends. Handshake bytes are
/// connection plumbing, not protocol traffic: they appear in no channel's
/// stats or taps (like the preamble itself). ("PPT2" framed the record
/// without the session field; "PPT1" was the unauthenticated predecessor;
/// peers of either version are cut off at the preamble.)
///
/// Semantics relative to the `Network` contract:
///   * Delivery is FIFO per (session, directed channel) — all frames
///     between two endpoints share one ordered connection per direction,
///     and the demux preserves arrival order within each session stream.
///   * Delivery is asynchronous: `Send` returns once the frame is written
///     to the socket; observe arrivals via `Receive` with a nonzero
///     `receive_timeout`.
///   * Stats/taps/nonce counters are accounted on the sending endpoint;
///     each directed channel has exactly one sending endpoint, so nonces
///     never collide across processes. Accounting happens at frame
///     preparation, before the socket write: a `Send` that then fails
///     (dead peer) is still counted and tapped — the run is aborting on
///     that error anyway, and a spent nonce must never be reused.
///   * Frames arriving for a party this endpoint has not (yet) registered
///     are parked and handed over by `RegisterParty` — a fast peer's
///     hello cannot be lost to the startup race of a slow process.
///
/// Thread-safe. Inbound I/O — accepting, the acceptor side of the
/// handshake, frame reassembly — runs on one `EventLoop` thread
/// multiplexing every connection over epoll, so the endpoint's thread
/// count is constant no matter how many peers connect or how many
/// sessions share the transport. Outbound writes run on the sending
/// protocol threads, serialized per connection, so sends never queue
/// behind an event loop.
class TcpNetwork : public ChannelTransport {
 public:
  struct Options {
    /// Local listen address. Port 0 lets the kernel pick (see
    /// `listen_port()`); IPv4 only — the paper's sites are a handful of
    /// named endpoints, and loopback is the test deployment.
    std::string listen_host = "127.0.0.1";
    uint16_t listen_port = 0;
    TransportSecurity security = TransportSecurity::kAuthenticatedEncryption;
    /// How long `Send` keeps retrying a refused dial before failing —
    /// covers the startup race where a peer process has not bound its
    /// listener yet. Retries back off exponentially with jitter (capped),
    /// so a herd of daemons restarting does not hammer the listener in
    /// lockstep.
    std::chrono::milliseconds connect_timeout{5000};
    /// Secret behind the per-connection challenge-response preamble. All
    /// endpoints of one deployment must share it; it defaults to the same
    /// provisioned-out-of-band master secret the channel keys derive from
    /// (`SecureChannel::kMasterKey`). A connection whose peer cannot
    /// answer the challenge is dropped before any frame is read, and
    /// `Send` fails with kPermissionDenied when the *listener* cannot
    /// prove itself.
    std::string auth_secret = SecureChannel::kMasterKey;
  };

  /// Binds the listener and starts the event loop.
  static Result<std::unique_ptr<TcpNetwork>> Create(const Options& options);

  ~TcpNetwork() override;

  /// The bound listen port (resolves kernel-assigned port 0).
  uint16_t listen_port() const { return listen_port_; }

  /// Declares `name` reachable at `host:port` (another TcpNetwork's
  /// listener). Fails with kAlreadyExists if the name is already local or
  /// remote.
  Status AddRemoteParty(const std::string& name, const std::string& host,
                        uint16_t port);

  // -- The backend half of the Network contract ------------------------------

  Status RegisterParty(const std::string& name) override
      EXCLUDES(registry_mutex_);
  bool HasParty(const std::string& name) const override
      EXCLUDES(registry_mutex_);
  Status SendOn(const std::string& session, const std::string& from,
                const std::string& to, const std::string& topic,
                std::string payload) override EXCLUDES(registry_mutex_);
  Status InjectFrameOn(const std::string& session, const std::string& from,
                       const std::string& to, const std::string& topic,
                       std::string wire_bytes) override
      EXCLUDES(registry_mutex_);

  /// Frames currently parked for parties this endpoint does not (yet)
  /// host; they are delivered the moment `RegisterParty` runs, preserving
  /// per-channel FIFO order.
  uint64_t UnclaimedFrameCount() const {
    return unclaimed_frames_.load(std::memory_order_relaxed);
  }

  /// Frames dropped because the unclaimed stash overflowed (a peer
  /// flooding a name this endpoint never registers). TCP has no way to
  /// bounce them back to the caller.
  uint64_t DroppedFrameCount() const {
    return dropped_frames_.load(std::memory_order_relaxed);
  }

  /// Chaos hook: `shutdown()`s every established outbound connection, as
  /// a crashed peer or dropped link would. The next send on each
  /// destination fails fast with `kUnavailable` and tears the connection
  /// down; the send after that re-dials (capped backoff), re-runs the
  /// HMAC handshake, and continues the channels' monotone nonce
  /// sequences — the reconnect path the recovery tests pin down.
  void DropEstablishedConnectionsForTesting() EXCLUDES(conn_mutex_);

 private:
  struct RemoteAddress {
    std::string host;
    uint16_t port = 0;
  };

  /// One outbound connection, keyed by "host:port" in the shared pool.
  /// The write mutex serializes whole frames (dial included), which is
  /// what preserves per-channel FIFO when several protocol threads — and
  /// several sessions — send to the same endpoint. `fd` is atomic rather
  /// than GUARDED_BY(write_mutex) for exactly one reason: the destructor
  /// must `shutdown()` a connection mid-write to unblock a stuck sender,
  /// and taking write_mutex there would wait on the very writer it is
  /// trying to release. Writers still mutate fd only under write_mutex;
  /// the lifecycle paths swap it with `exchange` so a send error and the
  /// destructor can never double-close one fd.
  struct Connection {
    std::atomic<int> fd{-1};
    Mutex write_mutex;
  };

  /// One accepted connection's state machine, driven by the event loop:
  /// nonblocking reads accumulate into `inbuf`, and `AdvanceConn` parses
  /// as much handshake/frame data as has arrived. Touched only on the
  /// loop thread.
  struct InboundConn {
    int fd = -1;
    enum class Phase {
      kAwaitHello,     // Expecting preamble + dialer challenge.
      kAwaitResponse,  // Greeting sent; expecting dialer's response MAC.
      kFrames,         // Authenticated; length-prefixed frames.
    };
    Phase phase = Phase::kAwaitHello;
    std::string inbuf;             // Received, not yet parsed.
    std::string outbuf;            // Greeting bytes the socket would not take.
    std::string acceptor_challenge;
    uint64_t handshake_timer = 0;  // Drops the conn if auth stalls.
  };

  TcpNetwork(const Options& options, int listen_fd, uint16_t listen_port,
             std::unique_ptr<EventLoop> loop);

  // Loop-thread handlers.
  void HandleAccept(uint32_t events);
  void HandleConnIo(int fd, uint32_t events);
  /// Parses everything parseable in `conn->inbuf`; false = protocol
  /// violation or auth failure, drop the connection.
  bool AdvanceConn(InboundConn* conn);
  /// Tries to flush `conn->outbuf`; arms EPOLLOUT while bytes remain.
  bool FlushConn(InboundConn* conn);
  void DropConn(int fd);

  /// Enqueues an arrived frame into the hosted receiver's queue, or parks
  /// it until that receiver registers.
  void Deliver(Message message);

  /// Send-side route lookup: `from` must be hosted here; resolves the
  /// destination endpoint address ("host:port") and the session's channel
  /// counters.
  Status ResolveRoute(const std::string& session, const std::string& from,
                      const std::string& to, std::string* dest_addr,
                      ChannelState** channel) EXCLUDES(registry_mutex_);
  /// Gets (dialing if needed, with backed-off retry on refusal) the
  /// pooled outbound connection to `dest_addr` and writes one framed
  /// message on it.
  Status WriteFrame(const std::string& dest_addr, const std::string& session,
                    const std::string& from, const std::string& to,
                    const std::string& topic, const std::string& wire)
      EXCLUDES(conn_mutex_);

  const std::chrono::milliseconds connect_timeout_;
  const std::string listen_host_;  // For self-dialing locally hosted parties.
  const std::string auth_key_;     // Connection-auth key (from auth_secret).

  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::atomic<bool> shutting_down_{false};

  /// The reactor owning all inbound I/O. Declared after the fds it
  /// watches, destroyed (joined) in the destructor before they close.
  std::unique_ptr<EventLoop> loop_;
  /// Accepted connections by fd; loop-thread-only (no lock — the
  /// destructor touches it only after the loop has been joined).
  std::map<int, std::unique_ptr<InboundConn>> inbound_;

  // Registry state beyond the base's parties_/channels_, guarded by the
  // shared registry_mutex_.
  std::map<std::string, RemoteAddress> remotes_ GUARDED_BY(registry_mutex_);
  /// Arrivals for receivers with no endpoint yet, in arrival order;
  /// drained into the endpoint by RegisterParty.
  std::map<std::string, std::deque<Message>> unclaimed_
      GUARDED_BY(registry_mutex_);

  /// Guards the *structure* of the outbound pool; each Connection's
  /// writes are serialized by its own write_mutex, never under this one.
  mutable Mutex conn_mutex_;
  std::map<std::string, std::unique_ptr<Connection>> connections_
      GUARDED_BY(conn_mutex_);

  std::atomic<uint64_t> unclaimed_frames_{0};
  std::atomic<uint64_t> dropped_frames_{0};
};

}  // namespace ppc

#endif  // PPC_NET_TCP_NETWORK_H_
