#ifndef PPC_NET_NETWORK_H_
#define PPC_NET_NETWORK_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "net/message.h"

namespace ppc {

/// Transport security of the links between parties.
enum class TransportSecurity {
  /// Frames carry the plaintext payload; an eavesdropper sees everything.
  /// This reproduces the *insecure channel* setting of the paper's Sec. 4.1
  /// inference discussion.
  kPlaintext,
  /// Frames are AES-128-CTR encrypted and HMAC-SHA-256 authenticated under
  /// a per-directed-channel key (modeling TLS between sites), which is the
  /// paper's "channels must be secured" requirement.
  kAuthenticatedEncryption,
};

/// Abstract point-to-point message transport between named parties.
///
/// This is the seam between the protocol stack and the deployment: the
/// paper's k data-holder sites plus the third party exchange point-to-point
/// messages, and everything in `src/core` (parties, session drivers) talks
/// only to this interface. Two backends ship with the library:
///
///   * `InMemoryNetwork` — all parties in one process; deterministic,
///     zero-latency, the simulator every experiment runs on.
///   * `TcpNetwork` — parties spread over OS processes/machines, frames
///     carried over TCP sockets.
///
/// Contract shared by every implementation:
///
///   * Delivery is FIFO per directed (sender, receiver) channel *within a
///     session*; frames of different sessions are independent streams.
///   * `Send` accounts one message and its payload/wire byte counts on the
///     sending side before it returns; `Receive` verifies and decrypts.
///   * With `TransportSecurity::kAuthenticatedEncryption` the on-wire frame
///     is nonce || AES-128-CTR ciphertext || truncated HMAC-SHA-256 MAC
///     under a per-directed-channel key (see `SecureChannel`), identical
///     across backends so captures and byte accounting are comparable.
///   * Registered eavesdropper taps observe exactly the on-wire bytes of
///     every frame crossing their channel, on the sending side.
///   * Delivery may be asynchronous (it is on TCP): the only guaranteed way
///     to observe a sent message is a `Receive` with a nonzero timeout.
///
/// Session multiplexing: N concurrent logical clustering sessions share one
/// transport (and, on TCP, one authenticated physical connection per party
/// pair). Each directed channel is keyed per `(session, from, to)` — its
/// own FIFO stream, traffic counters, nonce counter, and (on secured
/// transports) its own derived `SecureChannel` keys, so a frame sealed on
/// one session can never verify on another. The plain methods operate on
/// the default session (`kDefaultSession`, the empty id) and are exactly
/// the pre-multiplexing behavior; the `...On` variants take an explicit
/// session id. `SessionNetwork` adapts a session id back to the plain
/// interface so the protocol stack runs unchanged per session.
///
/// All methods are thread-safe; the concurrent protocol engine drives
/// several party steps at once.
class Network {
 public:
  /// Callback invoked for every frame crossing a tapped channel. Taps run
  /// serialized under one lock, so callbacks need no synchronization of
  /// their own.
  using Tap = std::function<void(const WireFrame&)>;

  virtual ~Network();

  /// Registers a party name hosted by this transport endpoint. Fails with
  /// kAlreadyExists on duplicates and kInvalidArgument on empty names.
  virtual Status RegisterParty(const std::string& name) = 0;

  /// True iff `name` is known to this transport (hosted here, or — for
  /// distributed backends — reachable at a known remote address).
  virtual bool HasParty(const std::string& name) const = 0;

  /// Sends `payload` from `from` to `to` under `topic`. `from` must be
  /// hosted by this endpoint; unknown parties are kNotFound.
  virtual Status Send(const std::string& from, const std::string& to,
                      const std::string& topic, std::string payload) = 0;

  /// Receives the oldest pending message addressed to `to` from `from`.
  /// If `expected_topic` is non-empty, a topic mismatch is a protocol
  /// violation (the message is left queued). With a nonzero
  /// `receive_timeout`, an empty channel blocks until a message arrives or
  /// the timeout elapses (then kNotFound); with a zero timeout an empty
  /// channel is kNotFound immediately.
  virtual Result<Message> Receive(const std::string& to,
                                  const std::string& from,
                                  const std::string& expected_topic = "") = 0;

  /// How long `Receive` waits for a message on an empty channel. Zero
  /// means non-blocking; distributed backends need a nonzero timeout for
  /// any cross-process receive.
  virtual void set_receive_timeout(std::chrono::milliseconds timeout) = 0;
  virtual std::chrono::milliseconds receive_timeout() const = 0;

  /// Number of undelivered messages addressed to the locally hosted party
  /// `to` (0 for parties not hosted here).
  virtual size_t PendingCount(const std::string& to) const = 0;

  /// Traffic counters for the directed channel `from` -> `to`, as observed
  /// by this endpoint (on distributed backends each endpoint accounts the
  /// channels its hosted parties send on).
  virtual ChannelStats StatsFor(const std::string& from,
                                const std::string& to) const = 0;

  /// Sum of counters over all channels where `party` is the sender.
  virtual ChannelStats TotalSentBy(const std::string& party) const = 0;

  /// Sum over every channel this endpoint accounts.
  virtual ChannelStats GrandTotal() const = 0;

  /// Resets all traffic counters (queues and nonce counters are
  /// unaffected, so no (key, nonce) pair is ever reused).
  virtual void ResetStats() = 0;

  /// Installs an eavesdropper on the directed channel `from` -> `to`.
  /// Fires on the sending side for every subsequent frame, on the
  /// sender's thread and outside transport locks — concurrent senders
  /// may invoke the same tap concurrently, and a tap that blocks (e.g. a
  /// latency injector) delays only its own sender.
  virtual void AddTap(const std::string& from, const std::string& to,
                      Tap tap) = 0;

  /// Fault-injection hook: delivers `wire_bytes` as if they had crossed
  /// the wire from `from` to `to` (no encryption, no accounting, no taps).
  /// Lets tests deliver tampered or replayed frames to exercise the
  /// receiver's integrity checks. Not used by the protocols themselves.
  virtual Status InjectFrame(const std::string& from, const std::string& to,
                             const std::string& topic,
                             std::string wire_bytes) = 0;

  /// The transport security mode of this network.
  virtual TransportSecurity security() const = 0;

  // -- Session-scoped variants ----------------------------------------------
  //
  // Distinct names (not overloads) so implementations overriding one set
  // never hide the other. The plain methods above are equivalent to these
  // with `session == kDefaultSession`.

  /// `Send` on an explicit session.
  virtual Status SendOn(const std::string& session, const std::string& from,
                        const std::string& to, const std::string& topic,
                        std::string payload) = 0;

  /// `Receive` on an explicit session; only frames sent on that session
  /// are visible.
  virtual Result<Message> ReceiveOn(const std::string& session,
                                    const std::string& to,
                                    const std::string& from,
                                    const std::string& expected_topic = "") = 0;

  /// Undelivered messages addressed to `to` on `session` alone (the plain
  /// `PendingCount` sums every session).
  virtual size_t PendingCountOn(const std::string& session,
                                const std::string& to) const = 0;

  /// Counters of the `(session, from, to)` channel alone (the plain
  /// `StatsFor` sums the `from` -> `to` channels of every session).
  virtual ChannelStats StatsOn(const std::string& session,
                               const std::string& from,
                               const std::string& to) const = 0;

  /// `TotalSentBy`, restricted to channels of `session`.
  virtual ChannelStats TotalSentByOn(const std::string& session,
                                     const std::string& party) const = 0;

  /// `GrandTotal`, restricted to channels of `session`.
  virtual ChannelStats GrandTotalOn(const std::string& session) const = 0;

  /// Installs a tap that fires only for frames of `session` (the plain
  /// `AddTap` observes the channel across all sessions; the frame's
  /// `session` field says which one it crossed on).
  virtual void AddTapOn(const std::string& session, const std::string& from,
                        const std::string& to, Tap tap) = 0;

  /// `InjectFrame` into an explicit session's stream.
  virtual Status InjectFrameOn(const std::string& session,
                               const std::string& from, const std::string& to,
                               const std::string& topic,
                               std::string wire_bytes) = 0;

  // -- Cancellation-aware variants ------------------------------------------
  //
  // Blocking receives that consult a `CancelToken` while waiting, so a
  // cancelled or deadline-expired session unblocks within one wait slice
  // instead of sleeping out the full transport timeout. `cancel` may be
  // null (then these are exactly `Receive`/`ReceiveOn`). Non-pure with
  // forwarding defaults so transport implementations stay source-
  // compatible; `ChannelTransport` overrides them with sliced waits.
  //
  // Error taxonomy every implementation must follow:
  //   * token cancelled        -> the token's sticky reason
  //   * token deadline passed  -> kDeadlineExceeded
  //   * transport timeout      -> kUnavailable ("peer unreachable")
  //   * zero-timeout empty     -> kNotFound (non-blocking probe, as ever)

  /// `Receive` that polls `cancel` while blocked.
  virtual Result<Message> ReceiveCancellable(const std::string& to,
                                             const std::string& from,
                                             const std::string& expected_topic,
                                             const CancelToken* cancel);

  /// `ReceiveOn` that polls `cancel` while blocked.
  virtual Result<Message> ReceiveOnCancellable(
      const std::string& session, const std::string& to,
      const std::string& from, const std::string& expected_topic,
      const CancelToken* cancel);

  /// Drops every queue, channel crypto/nonce state, and pending frame
  /// belonging to `session`, so a cancelled or failed session releases
  /// its transport footprint. Default: no-op (backends without per-
  /// session state have nothing to free).
  virtual void PurgeSession(const std::string& session);
};

}  // namespace ppc

#endif  // PPC_NET_NETWORK_H_
