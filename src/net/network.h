#ifndef PPC_NET_NETWORK_H_
#define PPC_NET_NETWORK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/message.h"

namespace ppc {

/// Transport security of the simulated links.
enum class TransportSecurity {
  /// Frames carry the plaintext payload; an eavesdropper sees everything.
  /// This reproduces the *insecure channel* setting of the paper's Sec. 4.1
  /// inference discussion.
  kPlaintext,
  /// Frames are AES-128-CTR encrypted and HMAC-SHA-256 authenticated under
  /// a per-directed-channel key (modeling TLS between sites), which is the
  /// paper's "channels must be secured" requirement.
  kAuthenticatedEncryption,
};

/// In-memory message router between named parties.
///
/// Models the paper's distributed deployment: k data-holder sites plus the
/// third party exchanging point-to-point messages. Delivery is FIFO per
/// (sender, receiver) pair. Every frame updates byte counters, which is what
/// the communication-cost experiments (DESIGN.md E8-E10, E13) measure, and
/// registered eavesdropper taps observe exactly the on-wire bytes, which is
/// what the channel-security experiment (E12) needs.
///
/// Thread-safe: the concurrent protocol engine drives several party steps
/// at once, so per-receiver queues are mutex-protected, traffic counters
/// are atomic, and `Receive` can optionally block on a condition variable
/// until a matching frame arrives (see `set_receive_timeout`). Encryption
/// and MAC verification run outside all locks, so senders on distinct
/// channels do not serialize on the crypto work.
class InMemoryNetwork {
 public:
  /// Callback invoked for every frame crossing a tapped channel. Taps run
  /// serialized under one lock, so callbacks need no synchronization of
  /// their own.
  using Tap = std::function<void(const WireFrame&)>;

  explicit InMemoryNetwork(
      TransportSecurity security = TransportSecurity::kAuthenticatedEncryption);

  /// Registers a party name. Fails with kAlreadyExists on duplicates.
  Status RegisterParty(const std::string& name);

  /// True iff `name` is registered.
  bool HasParty(const std::string& name) const;

  /// Sends `payload` from `from` to `to` under `topic`.
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::string payload);

  /// Receives the oldest pending message addressed to `to` from `from`.
  /// If `expected_topic` is non-empty, a topic mismatch is a protocol
  /// violation (the message is left queued). With a nonzero
  /// `receive_timeout`, an empty channel blocks on a condition variable
  /// until a message arrives or the timeout elapses (then kNotFound);
  /// with the default zero timeout an empty channel is kNotFound
  /// immediately.
  Result<Message> Receive(const std::string& to, const std::string& from,
                          const std::string& expected_topic = "");

  /// How long `Receive` waits for a message on an empty channel. Zero
  /// (the default) means non-blocking.
  void set_receive_timeout(std::chrono::milliseconds timeout) {
    receive_timeout_.store(timeout.count(), std::memory_order_relaxed);
  }
  std::chrono::milliseconds receive_timeout() const {
    return std::chrono::milliseconds(
        receive_timeout_.load(std::memory_order_relaxed));
  }

  /// Number of undelivered messages addressed to `to`.
  size_t PendingCount(const std::string& to) const;

  /// Traffic counters for the directed channel `from` -> `to`.
  ChannelStats StatsFor(const std::string& from, const std::string& to) const;

  /// Sum of counters over all channels where `party` is the sender.
  ChannelStats TotalSentBy(const std::string& party) const;

  /// Sum over every channel in the network.
  ChannelStats GrandTotal() const;

  /// Resets all traffic counters (queues are unaffected).
  void ResetStats();

  /// Installs an eavesdropper on the directed channel `from` -> `to`.
  void AddTap(const std::string& from, const std::string& to, Tap tap);

  /// Fault-injection hook: enqueues `wire_bytes` as if they had crossed the
  /// wire from `from` to `to` (no encryption, no accounting). Lets tests
  /// deliver tampered or replayed frames to exercise the receiver's
  /// integrity checks. Not used by the protocols themselves.
  Status InjectFrame(const std::string& from, const std::string& to,
                     const std::string& topic, std::string wire_bytes);

  /// The transport security mode of this network.
  TransportSecurity security() const { return security_; }

 private:
  /// One receiver: a queue per sending peer, guarded by one mutex so a
  /// blocked `Receive` can wait for any sender's arrival notification.
  struct Endpoint {
    mutable std::mutex mutex;
    std::condition_variable arrival;
    std::map<std::string, std::deque<Message>> queues;  // keyed by sender.
  };

  /// Per-directed-channel counters. Plain atomics: senders on the same
  /// channel bump them without taking any lock. The nonce counter survives
  /// ResetStats() so no (key, nonce) pair is ever reused.
  struct ChannelState {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> payload_bytes{0};
    std::atomic<uint64_t> wire_bytes{0};
    std::atomic<uint64_t> nonce_counter{0};
  };

  std::string ChannelKeyFor(const std::string& from,
                            const std::string& to) const;

  /// Registry lookups (shared, read-mostly): endpoint for `name`, or
  /// nullptr.
  Endpoint* FindEndpoint(const std::string& name) const;

  /// Resolves sender, receiver endpoint, and channel state (created on
  /// first use) in one registry lock — Send's whole routing lookup.
  Status ResolveRoute(const std::string& from, const std::string& to,
                      Endpoint** receiver, ChannelState** channel);

  TransportSecurity security_;
  std::string master_key_;  // Root of per-channel transport keys.

  /// Guards the *structure* of the registry maps below. Endpoint and
  /// ChannelState objects are heap-allocated and never destroyed while the
  /// network lives, so pointers obtained under this mutex stay valid after
  /// it is released.
  mutable std::mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<Endpoint>> parties_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<ChannelState>>
      channels_;

  /// Guards tap registration and serializes tap invocation.
  mutable std::mutex tap_mutex_;
  std::map<std::pair<std::string, std::string>, std::vector<Tap>> taps_;

  std::atomic<int64_t> receive_timeout_{0};  // Milliseconds.
};

}  // namespace ppc

#endif  // PPC_NET_NETWORK_H_
