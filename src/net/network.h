#ifndef PPC_NET_NETWORK_H_
#define PPC_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/message.h"

namespace ppc {

/// Transport security of the simulated links.
enum class TransportSecurity {
  /// Frames carry the plaintext payload; an eavesdropper sees everything.
  /// This reproduces the *insecure channel* setting of the paper's Sec. 4.1
  /// inference discussion.
  kPlaintext,
  /// Frames are AES-128-CTR encrypted and HMAC-SHA-256 authenticated under
  /// a per-directed-channel key (modeling TLS between sites), which is the
  /// paper's "channels must be secured" requirement.
  kAuthenticatedEncryption,
};

/// In-memory message router between named parties.
///
/// Models the paper's distributed deployment: k data-holder sites plus the
/// third party exchanging point-to-point messages. Delivery is FIFO per
/// (sender, receiver) pair. Every frame updates byte counters, which is what
/// the communication-cost experiments (DESIGN.md E8-E10, E13) measure, and
/// registered eavesdropper taps observe exactly the on-wire bytes, which is
/// what the channel-security experiment (E12) needs.
///
/// Single-threaded by design: the protocol drivers interleave party steps
/// deterministically, so no locking is required.
class InMemoryNetwork {
 public:
  /// Callback invoked for every frame crossing a tapped channel.
  using Tap = std::function<void(const WireFrame&)>;

  explicit InMemoryNetwork(
      TransportSecurity security = TransportSecurity::kAuthenticatedEncryption);

  /// Registers a party name. Fails with kAlreadyExists on duplicates.
  Status RegisterParty(const std::string& name);

  /// True iff `name` is registered.
  bool HasParty(const std::string& name) const;

  /// Sends `payload` from `from` to `to` under `topic`.
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::string payload);

  /// Receives the oldest pending message addressed to `to` from `from`.
  /// If `expected_topic` is non-empty, a topic mismatch is a protocol
  /// violation (the message is left queued).
  Result<Message> Receive(const std::string& to, const std::string& from,
                          const std::string& expected_topic = "");

  /// Number of undelivered messages addressed to `to`.
  size_t PendingCount(const std::string& to) const;

  /// Traffic counters for the directed channel `from` -> `to`.
  ChannelStats StatsFor(const std::string& from, const std::string& to) const;

  /// Sum of counters over all channels where `party` is the sender.
  ChannelStats TotalSentBy(const std::string& party) const;

  /// Sum over every channel in the network.
  ChannelStats GrandTotal() const;

  /// Resets all traffic counters (queues are unaffected).
  void ResetStats();

  /// Installs an eavesdropper on the directed channel `from` -> `to`.
  void AddTap(const std::string& from, const std::string& to, Tap tap);

  /// Fault-injection hook: enqueues `wire_bytes` as if they had crossed the
  /// wire from `from` to `to` (no encryption, no accounting). Lets tests
  /// deliver tampered or replayed frames to exercise the receiver's
  /// integrity checks. Not used by the protocols themselves.
  Status InjectFrame(const std::string& from, const std::string& to,
                     const std::string& topic, std::string wire_bytes);

  /// The transport security mode of this network.
  TransportSecurity security() const { return security_; }

 private:
  struct Endpoint {
    std::deque<Message> inbox;
  };

  std::string ChannelKeyFor(const std::string& from,
                            const std::string& to) const;

  TransportSecurity security_;
  std::string master_key_;  // Root of per-channel transport keys.
  std::map<std::string, Endpoint> parties_;
  std::map<std::pair<std::string, std::string>, ChannelStats> stats_;
  // Nonce counters survive ResetStats() so no (key, nonce) pair is reused.
  std::map<std::pair<std::string, std::string>, uint64_t> nonce_counters_;
  std::map<std::pair<std::string, std::string>, std::vector<Tap>> taps_;
};

}  // namespace ppc

#endif  // PPC_NET_NETWORK_H_
