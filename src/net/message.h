#ifndef PPC_NET_MESSAGE_H_
#define PPC_NET_MESSAGE_H_

#include <string>

namespace ppc {

/// A protocol message between two named parties.
///
/// `topic` identifies the protocol step (e.g. "numeric.masked_vector") so a
/// receiver can assert it is getting the message it expects; `payload` is an
/// opaque byte string produced by `ByteWriter`.
struct Message {
  std::string from;
  std::string to;
  std::string topic;
  std::string payload;
};

/// What an eavesdropper on a channel observes for one message: the frame
/// actually on the wire (ciphertext when the transport is secured).
struct WireFrame {
  std::string from;
  std::string to;
  std::string topic;
  std::string wire_bytes;
};

/// Cumulative traffic counters for one directed channel.
struct ChannelStats {
  uint64_t messages = 0;
  /// Bytes of application payload (pre-encryption).
  uint64_t payload_bytes = 0;
  /// Bytes on the wire (includes nonce/MAC overhead when secured).
  uint64_t wire_bytes = 0;
};

}  // namespace ppc

#endif  // PPC_NET_MESSAGE_H_
