#ifndef PPC_NET_MESSAGE_H_
#define PPC_NET_MESSAGE_H_

#include <string>

namespace ppc {

/// The logical session id of the single-session deployments that predate
/// session multiplexing. The plain `Network` methods (`Send`, `Receive`,
/// ...) operate on this session; the `...On` variants take an explicit
/// id. Default-session traffic is byte-identical to the pre-multiplexing
/// wire format's, so captures and goldens carry over.
inline constexpr char kDefaultSession[] = "";

/// A protocol message between two named parties.
///
/// `topic` identifies the protocol step (e.g. "numeric.masked_vector") so a
/// receiver can assert it is getting the message it expects; `payload` is an
/// opaque byte string produced by `ByteWriter`.
///
/// `session` names the logical clustering session the message belongs to;
/// concurrent sessions multiplexed over one transport are demultiplexed by
/// this field (empty = the default session). Declared last so existing
/// four-field aggregate initializers keep meaning what they meant.
struct Message {
  std::string from;
  std::string to;
  std::string topic;
  std::string payload;
  std::string session;
};

/// What an eavesdropper on a channel observes for one message: the frame
/// actually on the wire (ciphertext when the transport is secured), plus
/// the session it was sent on.
struct WireFrame {
  std::string from;
  std::string to;
  std::string topic;
  std::string wire_bytes;
  std::string session;
};

/// Cumulative traffic counters for one directed channel.
struct ChannelStats {
  uint64_t messages = 0;
  /// Bytes of application payload (pre-encryption).
  uint64_t payload_bytes = 0;
  /// Bytes on the wire (includes nonce/MAC overhead when secured).
  uint64_t wire_bytes = 0;
};

}  // namespace ppc

#endif  // PPC_NET_MESSAGE_H_
