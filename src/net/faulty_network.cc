#include "net/faulty_network.h"

#include <chrono>
#include <thread>

namespace ppc {
namespace {

/// splitmix64 — the canonical 64-bit mixer; tiny, fast, and good enough
/// to schedule faults deterministically.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over a string, for folding channel identity into the seed.
uint64_t HashString(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Per-channel stream seed: every (seed, session, from, to) tuple gets
/// its own reproducible draw sequence, independent of thread timing.
uint64_t ChannelSeed(uint64_t seed, const std::string& session,
                     const std::string& from, const std::string& to) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  h = HashString(h, session);
  h = HashString(h, "\x1f" + from);
  h = HashString(h, "\x1f" + to);
  // A zero state would read as "uninitialized"; nudge it.
  return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

double NextUnit(uint64_t* state) {
  // 53 random bits -> [0, 1).
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

Result<FaultProfile> FaultProfileFromName(const std::string& name) {
  if (name == "none") return FaultProfile{};
  if (name == "lossy-wan") return FaultProfile::LossyWan();
  if (name == "crashy-peer") return FaultProfile::CrashyPeer();
  return Status::InvalidArgument("unknown fault profile '" + name +
                                 "' (expected none|lossy-wan|crashy-peer)");
}

FaultyNetwork::FaultyNetwork(Network* base, FaultProfile profile,
                             uint64_t seed)
    : base_(base), profile_(profile), seed_(seed) {}

FaultyNetwork::FaultCounts FaultyNetwork::fault_counts() const {
  MutexLock lock(chaos_mutex_);
  return counts_;
}

FaultyNetwork::Decision FaultyNetwork::Decide(const std::string& session,
                                              const std::string& from,
                                              const std::string& to,
                                              const std::string& topic,
                                              const std::string& payload) {
  (void)topic;
  MutexLock lock(chaos_mutex_);
  ChannelChaos& chaos = channels_[ChannelKey(session, from, to)];
  if (chaos.rng_state == 0) {
    chaos.rng_state = ChannelSeed(seed_, session, from, to);
  }
  Decision decision;
  // Duplication replays the exact sealed bytes, which only a tap can
  // observe; install one per channel on its first frame.
  if (chaos.frames_sent == 0 && profile_.duplicate_probability > 0) {
    decision.register_tap = true;
  }
  // A frame held for reordering is released right after the current one,
  // whatever the current frame's own fate.
  if (chaos.holding) {
    decision.release_held = true;
    decision.held_topic = std::move(chaos.held_topic);
    decision.held_payload = std::move(chaos.held_payload);
    chaos.holding = false;
  }
  chaos.frames_sent++;
  if (profile_.disconnect_after_frames > 0 &&
      chaos.frames_sent > profile_.disconnect_after_frames) {
    decision.kind = FaultKind::kDisconnect;
    counts_.disconnected++;
    return decision;
  }
  // One draw decides the fault class (cumulative thresholds in severity
  // order), keeping every channel's stream alignment independent of
  // which probabilities are zero.
  const double u = NextUnit(&chaos.rng_state);
  double threshold = profile_.drop_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kDrop;
    counts_.dropped++;
    return decision;
  }
  threshold += profile_.corrupt_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kCorrupt;
    // Plausibly-sized garbage: nonce+mac-sized prefix plus a payload-ish
    // tail, all from the channel stream so runs replay exactly.
    const size_t size = 24 + (SplitMix64(&chaos.rng_state) % 64);
    decision.corrupt_bytes.reserve(size);
    while (decision.corrupt_bytes.size() < size) {
      uint64_t word = SplitMix64(&chaos.rng_state);
      for (int i = 0; i < 8 && decision.corrupt_bytes.size() < size; ++i) {
        decision.corrupt_bytes.push_back(static_cast<char>(word & 0xff));
        word >>= 8;
      }
    }
    counts_.corrupted++;
    return decision;
  }
  threshold += profile_.reorder_probability;
  if (u < threshold) {
    if (decision.release_held) {
      // One hold slot per channel: a round that releases a held frame
      // cannot hold another. The draw stays consumed (stream alignment)
      // and the current frame passes through untouched — falling into
      // the next bands here would mislabel the draw as their fault.
      return decision;
    }
    // Hold this frame until the channel's next send.
    decision.kind = FaultKind::kReorder;
    chaos.holding = true;
    chaos.held_topic = topic;
    chaos.held_payload = payload;
    counts_.reordered++;
    return decision;
  }
  threshold += profile_.duplicate_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kDuplicate;
    counts_.duplicated++;
    return decision;
  }
  threshold += profile_.delay_probability;
  if (u < threshold && profile_.max_delay_ms > 0) {
    decision.kind = FaultKind::kDelay;
    decision.delay_ms = 1 + SplitMix64(&chaos.rng_state) % profile_.max_delay_ms;
    counts_.delayed++;
    return decision;
  }
  return decision;
}

Status FaultyNetwork::ForwardSend(const std::string& session,
                                  const std::string& from,
                                  const std::string& to,
                                  const std::string& topic,
                                  std::string payload) {
  PPC_RETURN_IF_ERROR(base_->SendOn(session, from, to, topic,
                                    std::move(payload)));
  return Status::OK();
}

Status FaultyNetwork::SendOn(const std::string& session,
                             const std::string& from, const std::string& to,
                             const std::string& topic, std::string payload) {
  Decision decision = Decide(session, from, to, topic, payload);
  if (decision.register_tap) {
    // Record the sealed bytes of every real frame this channel sends, so
    // a later duplicate can replay them verbatim. The tap fires on this
    // sender's thread, outside transport locks.
    const ChannelKey key(session, from, to);
    base_->AddTapOn(session, from, to, [this, key](const WireFrame& frame) {
      MutexLock lock(chaos_mutex_);
      channels_[key].last_wire = frame.wire_bytes;
    });
  }
  Status result = Status::OK();
  switch (decision.kind) {
    case FaultKind::kDisconnect:
      // Dead peer: fail fast, deliver nothing (a held frame dies too).
      return Status::Unavailable(
          "chaos: channel " + from + " -> " + to + " (session '" + session +
          "') disconnected after " +
          std::to_string(profile_.disconnect_after_frames) + " frames");
    case FaultKind::kDrop:
      // Swallow silently: the receiver discovers the hole by timeout.
      break;
    case FaultKind::kCorrupt:
      // Garbage instead of the sealed frame: the receiver's MAC check
      // turns this into a typed integrity failure.
      result = base_->InjectFrameOn(session, from, to, topic,
                                    std::move(decision.corrupt_bytes));
      break;
    case FaultKind::kReorder:
      // Held: nothing crosses the wire until the channel's next frame.
      break;
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(decision.delay_ms));
      result = ForwardSend(session, from, to, topic, std::move(payload));
      break;
    case FaultKind::kDuplicate: {
      result = ForwardSend(session, from, to, topic, std::move(payload));
      if (result.ok()) {
        // Replay the exact sealed bytes captured by ForwardSend.
        std::string wire;
        {
          MutexLock lock(chaos_mutex_);
          wire = channels_[ChannelKey(session, from, to)].last_wire;
        }
        if (!wire.empty()) {
          PPC_RETURN_IF_ERROR(
              base_->InjectFrameOn(session, from, to, topic, std::move(wire)));
        }
      }
      break;
    }
    case FaultKind::kNone:
      result = ForwardSend(session, from, to, topic, std::move(payload));
      break;
  }
  if (!result.ok()) return result;
  if (decision.release_held) {
    return ForwardSend(session, from, to, decision.held_topic,
                       std::move(decision.held_payload));
  }
  return Status::OK();
}

void FaultyNetwork::PurgeSession(const std::string& session) {
  {
    MutexLock lock(chaos_mutex_);
    for (auto it = channels_.begin(); it != channels_.end();) {
      if (std::get<0>(it->first) == session) {
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
  }
  base_->PurgeSession(session);
}

}  // namespace ppc
