#ifndef PPC_NET_IN_MEMORY_NETWORK_H_
#define PPC_NET_IN_MEMORY_NETWORK_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "net/channel_transport.h"

namespace ppc {

/// In-memory `Network` backend: every party lives in one process and
/// frames hop queues instead of sockets.
///
/// Models the paper's distributed deployment: k data-holder sites plus the
/// third party exchanging point-to-point messages. Delivery is FIFO per
/// (session, sender, receiver) triple. Every frame updates byte counters,
/// which is what the communication-cost experiments (DESIGN.md E8-E10, E13)
/// measure, and registered eavesdropper taps observe exactly the on-wire
/// bytes, which is what the channel-security experiment (E12) needs.
///
/// Thread-safe: the concurrent protocol engine drives several party steps
/// at once, so per-receiver queues are mutex-protected, traffic counters
/// are atomic, and `Receive` can optionally block on a condition variable
/// until a matching frame arrives (see `set_receive_timeout`). Encryption
/// and MAC verification run outside all locks, so senders on distinct
/// channels do not serialize on the crypto work. (All of that machinery is
/// the shared `ChannelTransport` base; this class only adds in-process
/// routing.)
class InMemoryNetwork : public ChannelTransport {
 public:
  explicit InMemoryNetwork(
      TransportSecurity security = TransportSecurity::kAuthenticatedEncryption);

  Status RegisterParty(const std::string& name) override
      EXCLUDES(registry_mutex_);
  bool HasParty(const std::string& name) const override
      EXCLUDES(registry_mutex_);
  Status SendOn(const std::string& session, const std::string& from,
                const std::string& to, const std::string& topic,
                std::string payload) override EXCLUDES(registry_mutex_);
  Status InjectFrameOn(const std::string& session, const std::string& from,
                       const std::string& to, const std::string& topic,
                       std::string wire_bytes) override
      EXCLUDES(registry_mutex_);

 private:
  /// Resolves sender, receiver endpoint, and channel state (created on
  /// first use) in one registry lock — Send's whole routing lookup.
  Status ResolveRoute(const std::string& session, const std::string& from,
                      const std::string& to, Endpoint** receiver,
                      ChannelState** channel) EXCLUDES(registry_mutex_);
};

}  // namespace ppc

#endif  // PPC_NET_IN_MEMORY_NETWORK_H_
