#include "net/network.h"

#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace ppc {

namespace {
constexpr size_t kNonceLength = 8;
constexpr size_t kMacLength = 16;

std::string CounterNonce(uint64_t counter) {
  std::string nonce(kNonceLength, '\0');
  for (size_t i = 0; i < kNonceLength; ++i) {
    nonce[i] = static_cast<char>((counter >> (8 * i)) & 0xff);
  }
  return nonce;
}
}  // namespace

InMemoryNetwork::InMemoryNetwork(TransportSecurity security)
    : security_(security),
      // Models transport keys established out of band (e.g. TLS); the
      // protocol's security analysis treats channel encryption as given.
      master_key_("ppc-transport-master-key-v1") {}

Status InMemoryNetwork::RegisterParty(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto [it, inserted] = parties_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("party '" + name + "' already registered");
  }
  it->second = std::make_unique<Endpoint>();
  return Status::OK();
}

bool InMemoryNetwork::HasParty(const std::string& name) const {
  return FindEndpoint(name) != nullptr;
}

InMemoryNetwork::Endpoint* InMemoryNetwork::FindEndpoint(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = parties_.find(name);
  return it == parties_.end() ? nullptr : it->second.get();
}

Status InMemoryNetwork::ResolveRoute(const std::string& from,
                                     const std::string& to,
                                     Endpoint** receiver,
                                     ChannelState** channel) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (parties_.find(from) == parties_.end()) {
    return Status::NotFound("unknown sender '" + from + "'");
  }
  auto to_it = parties_.find(to);
  if (to_it == parties_.end()) {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  *receiver = to_it->second.get();
  if (channel != nullptr) {
    auto& slot = channels_[std::make_pair(from, to)];
    if (!slot) slot = std::make_unique<ChannelState>();
    *channel = slot.get();
  }
  return Status::OK();
}

std::string InMemoryNetwork::ChannelKeyFor(const std::string& from,
                                           const std::string& to) const {
  return HmacSha256::DeriveKey(master_key_, "channel:" + from + "->" + to);
}

Status InMemoryNetwork::Send(const std::string& from, const std::string& to,
                             const std::string& topic, std::string payload) {
  Endpoint* receiver = nullptr;
  ChannelState* channel = nullptr;
  PPC_RETURN_IF_ERROR(ResolveRoute(from, to, &receiver, &channel));

  // Frame construction runs outside every lock; concurrent senders only
  // contend on the atomic nonce counter.
  std::string wire;
  if (security_ == TransportSecurity::kPlaintext) {
    wire = payload;
  } else {
    std::string channel_key = ChannelKeyFor(from, to);
    std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
    enc_key.resize(16);
    std::string mac_key = HmacSha256::DeriveKey(channel_key, "mac");
    auto ctr = Aes128Ctr::Create(enc_key);
    if (!ctr.ok()) return ctr.status();
    std::string nonce = CounterNonce(
        channel->nonce_counter.fetch_add(1, std::memory_order_relaxed));
    std::string ciphertext = ctr->Crypt(nonce, payload);
    std::string mac = HmacSha256::Mac(mac_key, topic + ":" + nonce + ciphertext);
    mac.resize(kMacLength);
    wire = nonce + ciphertext + mac;
  }

  channel->messages.fetch_add(1, std::memory_order_relaxed);
  channel->payload_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  channel->wire_bytes.fetch_add(wire.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> tap_lock(tap_mutex_);
    auto tap_it = taps_.find(std::make_pair(from, to));
    if (tap_it != taps_.end()) {
      WireFrame frame{from, to, topic, wire};
      for (const Tap& tap : tap_it->second) tap(frame);
    }
  }

  {
    std::lock_guard<std::mutex> lock(receiver->mutex);
    receiver->queues[from].push_back(Message{from, to, topic, std::move(wire)});
  }
  receiver->arrival.notify_all();
  return Status::OK();
}

Result<Message> InMemoryNetwork::Receive(const std::string& to,
                                         const std::string& from,
                                         const std::string& expected_topic) {
  Endpoint* endpoint = FindEndpoint(to);
  if (endpoint == nullptr) {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  const std::chrono::milliseconds timeout = receive_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;

  Message msg;
  {
    std::unique_lock<std::mutex> lock(endpoint->mutex);
    for (;;) {
      auto queue_it = endpoint->queues.find(from);
      if (queue_it != endpoint->queues.end() && !queue_it->second.empty()) {
        Message& front = queue_it->second.front();
        if (!expected_topic.empty() && front.topic != expected_topic) {
          return Status::ProtocolViolation(
              "expected topic '" + expected_topic + "' from '" + from +
              "' but next message has topic '" + front.topic + "'");
        }
        msg = std::move(front);
        queue_it->second.pop_front();
        break;
      }
      if (timeout.count() <= 0) {
        return Status::NotFound("no pending message from '" + from +
                                "' to '" + to + "'");
      }
      if (endpoint->arrival.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        // Re-check once: the frame may have landed between the last scan
        // and the deadline.
        auto late_it = endpoint->queues.find(from);
        if (late_it != endpoint->queues.end() && !late_it->second.empty()) {
          continue;
        }
        return Status::NotFound("no message from '" + from + "' to '" + to +
                                "' within " + std::to_string(timeout.count()) +
                                " ms");
      }
    }
  }

  // Verification and decryption run outside the queue lock.
  if (security_ == TransportSecurity::kAuthenticatedEncryption) {
    if (msg.payload.size() < kNonceLength + kMacLength) {
      return Status::DataLoss("wire frame shorter than nonce+mac");
    }
    std::string nonce = msg.payload.substr(0, kNonceLength);
    std::string mac = msg.payload.substr(msg.payload.size() - kMacLength);
    std::string ciphertext = msg.payload.substr(
        kNonceLength, msg.payload.size() - kNonceLength - kMacLength);

    std::string channel_key = ChannelKeyFor(from, to);
    std::string mac_key = HmacSha256::DeriveKey(channel_key, "mac");
    std::string expected_mac =
        HmacSha256::Mac(mac_key, msg.topic + ":" + nonce + ciphertext);
    expected_mac.resize(kMacLength);
    if (!HmacSha256::Verify(expected_mac, mac)) {
      return Status::ProtocolViolation("MAC verification failed on channel " +
                                       from + "->" + to);
    }
    std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
    enc_key.resize(16);
    auto ctr = Aes128Ctr::Create(enc_key);
    if (!ctr.ok()) return ctr.status();
    msg.payload = ctr->Crypt(nonce, ciphertext);
  }
  return msg;
}

size_t InMemoryNetwork::PendingCount(const std::string& to) const {
  Endpoint* endpoint = FindEndpoint(to);
  if (endpoint == nullptr) return 0;
  std::lock_guard<std::mutex> lock(endpoint->mutex);
  size_t total = 0;
  for (const auto& [from, queue] : endpoint->queues) total += queue.size();
  return total;
}

ChannelStats InMemoryNetwork::StatsFor(const std::string& from,
                                       const std::string& to) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = channels_.find(std::make_pair(from, to));
  if (it == channels_.end() || !it->second) return ChannelStats{};
  ChannelStats stats;
  stats.messages = it->second->messages.load(std::memory_order_relaxed);
  stats.payload_bytes =
      it->second->payload_bytes.load(std::memory_order_relaxed);
  stats.wire_bytes = it->second->wire_bytes.load(std::memory_order_relaxed);
  return stats;
}

ChannelStats InMemoryNetwork::TotalSentBy(const std::string& party) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [channel, state] : channels_) {
    if (channel.first != party || !state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

ChannelStats InMemoryNetwork::GrandTotal() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [channel, state] : channels_) {
    if (!state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void InMemoryNetwork::ResetStats() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& [channel, state] : channels_) {
    if (!state) continue;
    state->messages.store(0, std::memory_order_relaxed);
    state->payload_bytes.store(0, std::memory_order_relaxed);
    state->wire_bytes.store(0, std::memory_order_relaxed);
    // nonce_counter deliberately survives: fresh nonces forever.
  }
}

void InMemoryNetwork::AddTap(const std::string& from, const std::string& to,
                             Tap tap) {
  std::lock_guard<std::mutex> lock(tap_mutex_);
  taps_[std::make_pair(from, to)].push_back(std::move(tap));
}

Status InMemoryNetwork::InjectFrame(const std::string& from,
                                    const std::string& to,
                                    const std::string& topic,
                                    std::string wire_bytes) {
  Endpoint* receiver = nullptr;
  PPC_RETURN_IF_ERROR(ResolveRoute(from, to, &receiver, nullptr));
  {
    std::lock_guard<std::mutex> lock(receiver->mutex);
    receiver->queues[from].push_back(
        Message{from, to, topic, std::move(wire_bytes)});
  }
  receiver->arrival.notify_all();
  return Status::OK();
}

}  // namespace ppc
