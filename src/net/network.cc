#include "net/network.h"

#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace ppc {

namespace {
constexpr size_t kNonceLength = 8;
constexpr size_t kMacLength = 16;

std::string CounterNonce(uint64_t counter) {
  std::string nonce(kNonceLength, '\0');
  for (size_t i = 0; i < kNonceLength; ++i) {
    nonce[i] = static_cast<char>((counter >> (8 * i)) & 0xff);
  }
  return nonce;
}
}  // namespace

InMemoryNetwork::InMemoryNetwork(TransportSecurity security)
    : security_(security),
      // Models transport keys established out of band (e.g. TLS); the
      // protocol's security analysis treats channel encryption as given.
      master_key_("ppc-transport-master-key-v1") {}

Status InMemoryNetwork::RegisterParty(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  auto [it, inserted] = parties_.try_emplace(name);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("party '" + name + "' already registered");
  }
  return Status::OK();
}

bool InMemoryNetwork::HasParty(const std::string& name) const {
  return parties_.find(name) != parties_.end();
}

std::string InMemoryNetwork::ChannelKeyFor(const std::string& from,
                                           const std::string& to) const {
  return HmacSha256::DeriveKey(master_key_, "channel:" + from + "->" + to);
}

Status InMemoryNetwork::Send(const std::string& from, const std::string& to,
                             const std::string& topic, std::string payload) {
  if (!HasParty(from)) return Status::NotFound("unknown sender '" + from + "'");
  if (!HasParty(to)) return Status::NotFound("unknown receiver '" + to + "'");

  auto channel = std::make_pair(from, to);
  ChannelStats& stats = stats_[channel];

  std::string wire;
  if (security_ == TransportSecurity::kPlaintext) {
    wire = payload;
  } else {
    std::string channel_key = ChannelKeyFor(from, to);
    std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
    enc_key.resize(16);
    std::string mac_key = HmacSha256::DeriveKey(channel_key, "mac");
    auto ctr = Aes128Ctr::Create(enc_key);
    if (!ctr.ok()) return ctr.status();
    std::string nonce = CounterNonce(nonce_counters_[channel]++);
    std::string ciphertext = ctr->Crypt(nonce, payload);
    std::string mac = HmacSha256::Mac(mac_key, topic + ":" + nonce + ciphertext);
    mac.resize(kMacLength);
    wire = nonce + ciphertext + mac;
  }

  stats.messages += 1;
  stats.payload_bytes += payload.size();
  stats.wire_bytes += wire.size();

  auto tap_it = taps_.find(channel);
  if (tap_it != taps_.end()) {
    WireFrame frame{from, to, topic, wire};
    for (const Tap& tap : tap_it->second) tap(frame);
  }

  parties_[to].inbox.push_back(Message{from, to, topic, std::move(wire)});
  return Status::OK();
}

Result<Message> InMemoryNetwork::Receive(const std::string& to,
                                         const std::string& from,
                                         const std::string& expected_topic) {
  auto party_it = parties_.find(to);
  if (party_it == parties_.end()) {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  auto& inbox = party_it->second.inbox;
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    if (it->from != from) continue;
    if (!expected_topic.empty() && it->topic != expected_topic) {
      return Status::ProtocolViolation(
          "expected topic '" + expected_topic + "' from '" + from +
          "' but next message has topic '" + it->topic + "'");
    }
    Message msg = std::move(*it);
    inbox.erase(it);

    if (security_ == TransportSecurity::kAuthenticatedEncryption) {
      if (msg.payload.size() < kNonceLength + kMacLength) {
        return Status::DataLoss("wire frame shorter than nonce+mac");
      }
      std::string nonce = msg.payload.substr(0, kNonceLength);
      std::string mac = msg.payload.substr(msg.payload.size() - kMacLength);
      std::string ciphertext = msg.payload.substr(
          kNonceLength, msg.payload.size() - kNonceLength - kMacLength);

      std::string channel_key = ChannelKeyFor(from, to);
      std::string mac_key = HmacSha256::DeriveKey(channel_key, "mac");
      std::string expected_mac =
          HmacSha256::Mac(mac_key, msg.topic + ":" + nonce + ciphertext);
      expected_mac.resize(kMacLength);
      if (!HmacSha256::Verify(expected_mac, mac)) {
        return Status::ProtocolViolation("MAC verification failed on channel " +
                                         from + "->" + to);
      }
      std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
      enc_key.resize(16);
      auto ctr = Aes128Ctr::Create(enc_key);
      if (!ctr.ok()) return ctr.status();
      msg.payload = ctr->Crypt(nonce, ciphertext);
    }
    return msg;
  }
  return Status::NotFound("no pending message from '" + from + "' to '" + to +
                          "'");
}

size_t InMemoryNetwork::PendingCount(const std::string& to) const {
  auto it = parties_.find(to);
  return it == parties_.end() ? 0 : it->second.inbox.size();
}

ChannelStats InMemoryNetwork::StatsFor(const std::string& from,
                                       const std::string& to) const {
  auto it = stats_.find(std::make_pair(from, to));
  return it == stats_.end() ? ChannelStats{} : it->second;
}

ChannelStats InMemoryNetwork::TotalSentBy(const std::string& party) const {
  ChannelStats total;
  for (const auto& [channel, stats] : stats_) {
    if (channel.first != party) continue;
    total.messages += stats.messages;
    total.payload_bytes += stats.payload_bytes;
    total.wire_bytes += stats.wire_bytes;
  }
  return total;
}

ChannelStats InMemoryNetwork::GrandTotal() const {
  ChannelStats total;
  for (const auto& [channel, stats] : stats_) {
    (void)channel;
    total.messages += stats.messages;
    total.payload_bytes += stats.payload_bytes;
    total.wire_bytes += stats.wire_bytes;
  }
  return total;
}

void InMemoryNetwork::ResetStats() { stats_.clear(); }

void InMemoryNetwork::AddTap(const std::string& from, const std::string& to,
                             Tap tap) {
  taps_[std::make_pair(from, to)].push_back(std::move(tap));
}

Status InMemoryNetwork::InjectFrame(const std::string& from,
                                    const std::string& to,
                                    const std::string& topic,
                                    std::string wire_bytes) {
  if (!HasParty(from)) return Status::NotFound("unknown sender '" + from + "'");
  if (!HasParty(to)) return Status::NotFound("unknown receiver '" + to + "'");
  parties_[to].inbox.push_back(Message{from, to, topic, std::move(wire_bytes)});
  return Status::OK();
}

}  // namespace ppc
