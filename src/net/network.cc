#include "net/network.h"

namespace ppc {

// Out-of-line key function so the interface's vtable has a home TU.
Network::~Network() = default;

Result<Message> Network::ReceiveCancellable(const std::string& to,
                                            const std::string& from,
                                            const std::string& expected_topic,
                                            const CancelToken* cancel) {
  if (cancel != nullptr) {
    PPC_RETURN_IF_ERROR(cancel->Check());
  }
  return Receive(to, from, expected_topic);
}

Result<Message> Network::ReceiveOnCancellable(const std::string& session,
                                              const std::string& to,
                                              const std::string& from,
                                              const std::string& expected_topic,
                                              const CancelToken* cancel) {
  if (cancel != nullptr) {
    PPC_RETURN_IF_ERROR(cancel->Check());
  }
  return ReceiveOn(session, to, from, expected_topic);
}

void Network::PurgeSession(const std::string& /*session*/) {}

}  // namespace ppc
