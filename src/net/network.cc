#include "net/network.h"

namespace ppc {

// Out-of-line key function so the interface's vtable has a home TU.
Network::~Network() = default;

}  // namespace ppc
