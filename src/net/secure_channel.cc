#include "net/secure_channel.h"

#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace ppc {

namespace {

std::string CounterNonce(uint64_t counter) {
  std::string nonce(SecureChannel::kNonceLength, '\0');
  for (size_t i = 0; i < SecureChannel::kNonceLength; ++i) {
    nonce[i] = static_cast<char>((counter >> (8 * i)) & 0xff);
  }
  return nonce;
}

}  // namespace

const char SecureChannel::kMasterKey[] = "ppc-transport-master-key-v1";

std::string SecureChannel::ChannelKey(const std::string& master_key,
                                      const std::string& from,
                                      const std::string& to) {
  return HmacSha256::DeriveKey(master_key, "channel:" + from + "->" + to);
}

std::string SecureChannel::ConnectionAuthKey(const std::string& master_key) {
  return HmacSha256::DeriveKey(master_key, "connection-auth");
}

std::string SecureChannel::ConnectionAuthResponse(
    const std::string& auth_key, const std::string& label,
    const std::string& challenge) {
  std::string response = HmacSha256::Mac(auth_key, label + ":" + challenge);
  response.resize(kMacLength);
  return response;
}

Result<std::string> SecureChannel::Seal(const std::string& channel_key,
                                        const std::string& topic,
                                        uint64_t nonce_counter,
                                        const std::string& payload) {
  std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
  enc_key.resize(16);
  std::string mac_key = HmacSha256::DeriveKey(channel_key, "mac");
  auto ctr = Aes128Ctr::Create(enc_key);
  if (!ctr.ok()) return ctr.status();
  std::string nonce = CounterNonce(nonce_counter);
  std::string ciphertext = ctr->Crypt(nonce, payload);
  std::string mac = HmacSha256::Mac(mac_key, topic + ":" + nonce + ciphertext);
  mac.resize(kMacLength);
  return nonce + ciphertext + mac;
}

Result<std::string> SecureChannel::Open(const std::string& channel_key,
                                        const std::string& topic,
                                        const std::string& wire,
                                        const std::string& channel_name) {
  if (wire.size() < kNonceLength + kMacLength) {
    return Status::DataLoss("wire frame shorter than nonce+mac");
  }
  std::string nonce = wire.substr(0, kNonceLength);
  std::string mac = wire.substr(wire.size() - kMacLength);
  std::string ciphertext =
      wire.substr(kNonceLength, wire.size() - kNonceLength - kMacLength);

  std::string mac_key = HmacSha256::DeriveKey(channel_key, "mac");
  std::string expected_mac =
      HmacSha256::Mac(mac_key, topic + ":" + nonce + ciphertext);
  expected_mac.resize(kMacLength);
  if (!HmacSha256::Verify(expected_mac, mac)) {
    return Status::ProtocolViolation("MAC verification failed on channel " +
                                     channel_name);
  }
  std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
  enc_key.resize(16);
  auto ctr = Aes128Ctr::Create(enc_key);
  if (!ctr.ok()) return ctr.status();
  return ctr->Crypt(nonce, ciphertext);
}

}  // namespace ppc
