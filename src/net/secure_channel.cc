#include "net/secure_channel.h"

#include <cstring>

namespace ppc {

namespace {

std::string CounterNonce(uint64_t counter) {
  std::string nonce(SecureChannel::kNonceLength, '\0');
  for (size_t i = 0; i < SecureChannel::kNonceLength; ++i) {
    nonce[i] = static_cast<char>((counter >> (8 * i)) & 0xff);
  }
  return nonce;
}

std::string DeriveEncKey(const std::string& channel_key) {
  std::string enc_key = HmacSha256::DeriveKey(channel_key, "enc");
  enc_key.resize(16);
  return enc_key;
}

}  // namespace

static_assert(SecureChannel::kNonceLength == Aes128Ctr::kNonceLength,
              "frame nonce field must match the AES-CTR nonce contract");

const char SecureChannel::kMasterKey[] = "ppc-transport-master-key-v1";

std::string SecureChannel::ChannelKey(const std::string& master_key,
                                      const std::string& from,
                                      const std::string& to) {
  return HmacSha256::DeriveKey(master_key, "channel:" + from + "->" + to);
}

std::string SecureChannel::ChannelKey(const std::string& master_key,
                                      const std::string& from,
                                      const std::string& to,
                                      const std::string& session) {
  if (session.empty()) return ChannelKey(master_key, from, to);
  // '#' never appears in a party name's position in the plain label, so
  // the session-qualified label space cannot collide with it.
  return HmacSha256::DeriveKey(
      master_key, "channel:" + from + "->" + to + "#" + session);
}

std::string SecureChannel::ConnectionAuthKey(const std::string& master_key) {
  return HmacSha256::DeriveKey(master_key, "connection-auth");
}

std::string SecureChannel::ConnectionAuthResponse(
    const std::string& auth_key, const std::string& label,
    const std::string& challenge) {
  std::string response = HmacSha256::Mac(auth_key, label + ":" + challenge);
  response.resize(kMacLength);
  return response;
}

SecureChannel::Context::Context(const std::string& channel_key)
    // A 16-byte key can only fail Create on a size mismatch, which
    // DeriveEncKey rules out.
    : ctr_(Aes128Ctr::Create(DeriveEncKey(channel_key)).TakeValue()),
      mac_key_(HmacSha256::DeriveKey(channel_key, "mac")) {}

Result<std::string> SecureChannel::Context::Seal(
    const std::string& topic, uint64_t nonce_counter,
    const std::string& payload) const {
  const std::string nonce = CounterNonce(nonce_counter);
  // Single pre-sized frame buffer: nonce || ciphertext || mac.
  std::string wire(kNonceLength + payload.size() + kMacLength, '\0');
  std::memcpy(wire.data(), nonce.data(), kNonceLength);
  if (!payload.empty()) {
    std::memcpy(wire.data() + kNonceLength, payload.data(), payload.size());
  }
  PPC_RETURN_IF_ERROR(
      ctr_.CryptInPlace(nonce, wire.data() + kNonceLength, payload.size()));

  // MAC input is topic ":" nonce ciphertext; nonce and ciphertext are
  // already adjacent in the frame, so the whole input streams through
  // without being concatenated anywhere.
  HmacSha256::Stream mac(mac_key_);
  mac.Update(topic);
  mac.Update(":", 1);
  mac.Update(wire.data(), kNonceLength + payload.size());
  const std::string digest = mac.Finish();
  std::memcpy(wire.data() + kNonceLength + payload.size(), digest.data(),
              kMacLength);
  return wire;
}

Result<std::string> SecureChannel::Context::Open(
    const std::string& topic, const std::string& wire,
    const std::string& channel_name) const {
  if (wire.size() < kNonceLength + kMacLength) {
    return Status::DataLoss("wire frame shorter than nonce+mac");
  }
  const size_t ciphertext_length = wire.size() - kNonceLength - kMacLength;

  HmacSha256::Stream mac(mac_key_);
  mac.Update(topic);
  mac.Update(":", 1);
  mac.Update(wire.data(), kNonceLength + ciphertext_length);
  std::string expected_mac = mac.Finish();
  expected_mac.resize(kMacLength);
  if (!HmacSha256::Verify(expected_mac,
                          wire.substr(wire.size() - kMacLength))) {
    return Status::ProtocolViolation("MAC verification failed on channel " +
                                     channel_name);
  }

  const std::string nonce = wire.substr(0, kNonceLength);
  std::string plaintext(wire.data() + kNonceLength, ciphertext_length);
  PPC_RETURN_IF_ERROR(
      ctr_.CryptInPlace(nonce, plaintext.data(), plaintext.size()));
  return plaintext;
}

Result<std::string> SecureChannel::Seal(const std::string& channel_key,
                                        const std::string& topic,
                                        uint64_t nonce_counter,
                                        const std::string& payload) {
  return Context(channel_key).Seal(topic, nonce_counter, payload);
}

Result<std::string> SecureChannel::Open(const std::string& channel_key,
                                        const std::string& topic,
                                        const std::string& wire,
                                        const std::string& channel_name) {
  return Context(channel_key).Open(topic, wire, channel_name);
}

}  // namespace ppc
