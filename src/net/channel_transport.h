#ifndef PPC_NET_CHANNEL_TRANSPORT_H_
#define PPC_NET_CHANNEL_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/network.h"
#include "net/secure_channel.h"

namespace ppc {

/// Shared machinery for `Network` backends that deliver frames into
/// per-receiver FIFO queues with per-directed-channel accounting — which
/// is every backend in the tree. One implementation of the
/// contract-critical paths (session demultiplexing, blocking `Receive`
/// with timeout and strict topic checking, pending counts, stats
/// aggregation and reset, tap fan-out, `SecureChannel` seal/open) keeps
/// the in-memory simulator and the TCP transport behaviorally identical
/// by construction; the transport-conformance suite then only has to
/// catch divergence in what subclasses add: party registration and frame
/// routing (`RegisterParty`, `SendOn`, `InjectFrameOn`, `HasParty`).
///
/// Sessions: every directed channel is keyed `(session, from, to)` — its
/// own FIFO queue, counters, nonce counter, and crypto context (keys
/// derived per session, see `SecureChannel::ChannelKey`). The default
/// session is the pre-multiplexing transport, bit-for-bit.
class ChannelTransport : public Network {
 public:
  // -- The shared half of the Network contract ------------------------------

  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override {
    return SendOn(kDefaultSession, from, to, topic, std::move(payload));
  }
  Result<Message> Receive(const std::string& to, const std::string& from,
                          const std::string& expected_topic = "") override {
    return ReceiveOn(kDefaultSession, to, from, expected_topic);
  }
  Status InjectFrame(const std::string& from, const std::string& to,
                     const std::string& topic,
                     std::string wire_bytes) override {
    return InjectFrameOn(kDefaultSession, from, to, topic,
                         std::move(wire_bytes));
  }

  Result<Message> ReceiveOn(const std::string& session, const std::string& to,
                            const std::string& from,
                            const std::string& expected_topic = "") override
      EXCLUDES(registry_mutex_);

  Result<Message> ReceiveCancellable(const std::string& to,
                                     const std::string& from,
                                     const std::string& expected_topic,
                                     const CancelToken* cancel) override {
    return ReceiveOnCancellable(kDefaultSession, to, from, expected_topic,
                                cancel);
  }

  /// The real blocking receive of every queue-based backend: waits in
  /// short slices, re-checking `cancel` (when non-null) each wake, so a
  /// cancelled or deadline-expired session unblocks in at most one slice.
  /// An exhausted transport timeout is `kUnavailable` with the session,
  /// channel, and topic in the message; a token deadline/cancellation
  /// keeps the token's own code (`kDeadlineExceeded` or the cancel
  /// reason), likewise decorated.
  Result<Message> ReceiveOnCancellable(const std::string& session,
                                       const std::string& to,
                                       const std::string& from,
                                       const std::string& expected_topic,
                                       const CancelToken* cancel) override
      EXCLUDES(registry_mutex_);

  /// Frees every trace of `session`: its directed channels (counters,
  /// nonce counters, crypto contexts) and its queued undelivered frames
  /// at every endpoint. Callers must only purge retired session ids — a
  /// later send on a purged session re-derives keys with a fresh nonce
  /// counter, so reusing the id would reuse (key, nonce) pairs.
  void PurgeSession(const std::string& session) override
      EXCLUDES(registry_mutex_);

  void set_receive_timeout(std::chrono::milliseconds timeout) override {
    receive_timeout_.store(timeout.count(), std::memory_order_relaxed);
  }
  std::chrono::milliseconds receive_timeout() const override {
    return std::chrono::milliseconds(
        receive_timeout_.load(std::memory_order_relaxed));
  }

  size_t PendingCount(const std::string& to) const override
      EXCLUDES(registry_mutex_);
  size_t PendingCountOn(const std::string& session,
                        const std::string& to) const override
      EXCLUDES(registry_mutex_);
  ChannelStats StatsFor(const std::string& from,
                        const std::string& to) const override
      EXCLUDES(registry_mutex_);
  ChannelStats StatsOn(const std::string& session, const std::string& from,
                       const std::string& to) const override
      EXCLUDES(registry_mutex_);
  ChannelStats TotalSentBy(const std::string& party) const override
      EXCLUDES(registry_mutex_);
  ChannelStats TotalSentByOn(const std::string& session,
                             const std::string& party) const override
      EXCLUDES(registry_mutex_);
  ChannelStats GrandTotal() const override EXCLUDES(registry_mutex_);
  ChannelStats GrandTotalOn(const std::string& session) const override
      EXCLUDES(registry_mutex_);
  void ResetStats() override EXCLUDES(registry_mutex_);
  void AddTap(const std::string& from, const std::string& to, Tap tap) override
      EXCLUDES(tap_mutex_);
  void AddTapOn(const std::string& session, const std::string& from,
                const std::string& to, Tap tap) override EXCLUDES(tap_mutex_);
  TransportSecurity security() const override { return security_; }

  /// Test hook for the nonce-exhaustion contract: pins the nonce counter
  /// of the `(session, from, to)` channel (created on first use) so a
  /// test can reach the end of the nonce space without sending 2^64
  /// frames. kFailedPrecondition on a plaintext transport, which has no
  /// nonces.
  Status SetNonceCounterForTesting(const std::string& session,
                                   const std::string& from,
                                   const std::string& to, uint64_t value)
      EXCLUDES(registry_mutex_);

 protected:
  explicit ChannelTransport(TransportSecurity security);

  /// One receiver: a FIFO queue per (session, sending peer), guarded by
  /// one mutex so a blocked `Receive` can wait for any arrival
  /// notification addressed to it.
  struct Endpoint {
    mutable Mutex mutex;
    CondVar arrival;
    /// Keyed by (session, sender).
    std::map<std::pair<std::string, std::string>, std::deque<Message>> queues
        GUARDED_BY(mutex);
  };

  /// Per-directed-channel counters. Plain atomics: senders on the same
  /// channel bump them without taking any lock. The nonce counter survives
  /// ResetStats() so no (key, nonce) pair is ever reused.
  struct ChannelState {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> payload_bytes{0};
    std::atomic<uint64_t> wire_bytes{0};
    std::atomic<uint64_t> nonce_counter{0};
    /// Cached seal/open context (derived subkeys, AES key schedule, HMAC
    /// midstates), created with the channel on an authenticated-encryption
    /// transport; null on plaintext transports. Immutable once built, so
    /// concurrent Seal/Open need no lock.
    std::unique_ptr<SecureChannel::Context> crypto;
    /// "from->to" (default session) or "from->to#session", cached so
    /// per-frame error decoration costs nothing.
    std::string name;
  };

  /// (session, from, to) — the identity of one directed channel.
  using ChannelKey = std::tuple<std::string, std::string, std::string>;

  /// Registry lookup (takes registry_mutex_): endpoint for `name`, or
  /// nullptr. Endpoint and ChannelState objects are heap-allocated and
  /// never destroyed while the transport lives, so returned pointers stay
  /// valid after the lock is released.
  Endpoint* FindEndpoint(const std::string& name) const
      EXCLUDES(registry_mutex_);

  /// As `FindEndpoint`, requiring registry_mutex_ held — the one lookup
  /// both it and `ResolveReceive` share.
  Endpoint* FindEndpointLocked(const std::string& name) const
      REQUIRES(registry_mutex_);

  /// The channel state for `from` -> `to` on `session`, created on first
  /// use (including its crypto context, so the key derivation cost is
  /// paid exactly once per directed channel).
  ChannelState* ChannelForLocked(const std::string& session,
                                 const std::string& from, const std::string& to)
      REQUIRES(registry_mutex_);

  /// One registry-locked lookup for the whole receive path: the endpoint
  /// for `to` (nullptr if unregistered) and, when `channel` is non-null,
  /// the session's `from` -> `to` channel state if that channel already
  /// exists (never created here — a fruitless Receive must leave no state
  /// behind). Returned pointers stay valid for the transport's lifetime.
  Endpoint* ResolveReceive(const std::string& session, const std::string& to,
                           const std::string& from, ChannelState** channel)
      EXCLUDES(registry_mutex_);

  /// Registry-locked create-on-use lookup of the session's `from` -> `to`
  /// channel — the receive-side counterpart of the state `PrepareFrame`
  /// gets handed; called once per channel, for the first frame that
  /// actually arrives.
  ChannelState* ChannelFor(const std::string& session, const std::string& from,
                           const std::string& to) EXCLUDES(registry_mutex_);

  /// Send-side frame preparation, identical across backends: seals the
  /// payload under the directed channel's key (pass-through on a
  /// plaintext transport), bumps the channel's traffic counters, and
  /// fires taps with exactly the on-wire bytes. Refuses with
  /// kResourceExhausted once the channel's nonce space is spent (2^64-1
  /// frames) — a nonce must never be reused. Runs outside every lock
  /// except the tap serialization.
  Result<std::string> PrepareFrame(const std::string& session,
                                   const std::string& from,
                                   const std::string& to,
                                   const std::string& topic,
                                   const std::string& payload,
                                   ChannelState* channel)
      EXCLUDES(tap_mutex_);

  /// Enqueues `message` at `endpoint` (under its session/sender queue) and
  /// wakes blocked receivers.
  static void DeliverLocal(Endpoint* endpoint, Message message);

  /// Guards the *structure* of parties_ / channels_ (and any registry
  /// state a subclass keeps alongside them, e.g. remote addresses).
  mutable Mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<Endpoint>> parties_
      GUARDED_BY(registry_mutex_);
  std::map<ChannelKey, std::unique_ptr<ChannelState>> channels_
      GUARDED_BY(registry_mutex_);

 private:
  /// One registered eavesdropper: fires for every frame of its channel,
  /// or only for one session's frames when filtered.
  struct TapEntry {
    bool filtered = false;
    std::string session;
    Tap tap;
  };

  void AddTapEntry(const std::string& from, const std::string& to,
                   TapEntry entry) EXCLUDES(tap_mutex_);

  TransportSecurity security_;
  std::string master_key_;  // Root of per-channel transport keys.

  /// Guards tap registration (tap invocation snapshots under the lock
  /// and fires outside it).
  mutable Mutex tap_mutex_;
  std::map<std::pair<std::string, std::string>, std::vector<TapEntry>> taps_
      GUARDED_BY(tap_mutex_);

  std::atomic<int64_t> receive_timeout_{0};  // Milliseconds.
};

}  // namespace ppc

#endif  // PPC_NET_CHANNEL_TRANSPORT_H_
