#include "net/channel_transport.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "net/secure_channel.h"

namespace ppc {

ChannelTransport::ChannelTransport(TransportSecurity security)
    : security_(security), master_key_(SecureChannel::kMasterKey) {}

ChannelTransport::Endpoint* ChannelTransport::FindEndpoint(
    const std::string& name) const {
  MutexLock lock(registry_mutex_);
  return FindEndpointLocked(name);
}

ChannelTransport::Endpoint* ChannelTransport::FindEndpointLocked(
    const std::string& name) const {
  auto it = parties_.find(name);
  return it == parties_.end() ? nullptr : it->second.get();
}

ChannelTransport::ChannelState* ChannelTransport::ChannelForLocked(
    const std::string& session, const std::string& from,
    const std::string& to) {
  auto& slot = channels_[ChannelKey(session, from, to)];
  if (!slot) {
    slot = std::make_unique<ChannelState>();
    slot->name = session.empty() ? from + "->" + to
                                 : from + "->" + to + "#" + session;
    if (security_ == TransportSecurity::kAuthenticatedEncryption) {
      // All key derivation and key expansion for this directed channel
      // happens here, once; every later Seal/Open reuses the context. The
      // key binds the session id, so cross-session frames never verify.
      slot->crypto = std::make_unique<SecureChannel::Context>(
          SecureChannel::ChannelKey(master_key_, from, to, session));
    }
  }
  return slot.get();
}

ChannelTransport::Endpoint* ChannelTransport::ResolveReceive(
    const std::string& session, const std::string& to, const std::string& from,
    ChannelState** channel) {
  MutexLock lock(registry_mutex_);
  Endpoint* endpoint = FindEndpointLocked(to);
  if (endpoint == nullptr) return nullptr;
  if (channel != nullptr) {
    // Look up without creating: a Receive for a sender that never sends
    // must leave no channel state behind. The state is created lazily
    // (ChannelFor) only once a frame has actually arrived.
    auto it = channels_.find(ChannelKey(session, from, to));
    *channel = (it != channels_.end()) ? it->second.get() : nullptr;
  }
  return endpoint;
}

ChannelTransport::ChannelState* ChannelTransport::ChannelFor(
    const std::string& session, const std::string& from,
    const std::string& to) {
  MutexLock lock(registry_mutex_);
  return ChannelForLocked(session, from, to);
}

Result<std::string> ChannelTransport::PrepareFrame(
    const std::string& session, const std::string& from, const std::string& to,
    const std::string& topic, const std::string& payload,
    ChannelState* channel) {
  // Frame construction runs outside every lock; concurrent senders only
  // contend on the atomic nonce counter.
  std::string wire;
  if (security_ == TransportSecurity::kPlaintext) {
    wire = payload;
  } else {
    // Claim the next nonce, refusing once the space is spent: the counter
    // parks at the max value forever rather than wrapping to 0, because a
    // reused (key, nonce) pair breaks CTR mode outright.
    uint64_t nonce = channel->nonce_counter.load(std::memory_order_relaxed);
    do {
      if (nonce == std::numeric_limits<uint64_t>::max()) {
        return Status::ResourceExhausted(
            "channel " + channel->name +
            " has exhausted its nonce space (2^64-1 frames); no further "
            "frame can be sealed on it");
      }
    } while (!channel->nonce_counter.compare_exchange_weak(
        nonce, nonce + 1, std::memory_order_relaxed));
    PPC_ASSIGN_OR_RETURN(wire, channel->crypto->Seal(topic, nonce, payload));
  }

  channel->messages.fetch_add(1, std::memory_order_relaxed);
  channel->payload_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  channel->wire_bytes.fetch_add(wire.size(), std::memory_order_relaxed);

  // Snapshot the matching taps under the lock, invoke them outside it:
  // taps are user callbacks (observers, latency injectors) and must not
  // serialize concurrent senders on other channels or sessions.
  std::vector<Tap> matching;
  {
    MutexLock tap_lock(tap_mutex_);
    auto tap_it = taps_.find(std::make_pair(from, to));
    if (tap_it != taps_.end()) {
      for (const TapEntry& entry : tap_it->second) {
        if (entry.filtered && entry.session != session) continue;
        matching.push_back(entry.tap);
      }
    }
  }
  if (!matching.empty()) {
    WireFrame frame{from, to, topic, wire, session};
    for (const Tap& tap : matching) tap(frame);
  }
  return wire;
}

void ChannelTransport::DeliverLocal(Endpoint* endpoint, Message message) {
  {
    MutexLock lock(endpoint->mutex);
    endpoint->queues[std::make_pair(message.session, message.from)].push_back(
        std::move(message));
  }
  endpoint->arrival.NotifyAll();
}

Result<Message> ChannelTransport::ReceiveOn(const std::string& session,
                                            const std::string& to,
                                            const std::string& from,
                                            const std::string& expected_topic) {
  return ReceiveOnCancellable(session, to, from, expected_topic, nullptr);
}

namespace {

/// Channel context appended to every blocking-receive failure so a stuck
/// session reads as "who was waiting on whom, for what" in the log.
std::string ReceiveContext(const std::string& session, const std::string& from,
                           const std::string& to, const std::string& topic) {
  std::string out = " (session '" + session + "', " + from + " -> " + to;
  if (!topic.empty()) out += ", topic '" + topic + "'";
  out += ")";
  return out;
}

}  // namespace

Result<Message> ChannelTransport::ReceiveOnCancellable(
    const std::string& session, const std::string& to, const std::string& from,
    const std::string& expected_topic, const CancelToken* cancel) {
  // How often a blocked receive wakes to poll the cancel token. Bounds
  // how long a cancelled session can keep its worker parked.
  constexpr std::chrono::milliseconds kCancelPollSlice(50);

  // One registry lock resolves both the endpoint and the channel's
  // cached crypto state up front.
  ChannelState* channel = nullptr;
  Endpoint* endpoint = ResolveReceive(
      session, to, from,
      security() == TransportSecurity::kAuthenticatedEncryption ? &channel
                                                                : nullptr);
  if (endpoint == nullptr) {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  if (cancel != nullptr) {
    Status live = cancel->Check();
    if (!live.ok()) {
      return Status(live.code(),
                    live.message() + ReceiveContext(session, from, to,
                                                    expected_topic));
    }
  }
  const std::chrono::milliseconds timeout = receive_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const auto queue_key = std::make_pair(session, from);

  Message msg;
  {
    MutexLock lock(endpoint->mutex);
    for (;;) {
      auto queue_it = endpoint->queues.find(queue_key);
      if (queue_it != endpoint->queues.end() && !queue_it->second.empty()) {
        Message& front = queue_it->second.front();
        if (!expected_topic.empty() && front.topic != expected_topic) {
          return Status::ProtocolViolation(
              "expected topic '" + expected_topic + "' from '" + from +
              "' but next message has topic '" + front.topic + "'");
        }
        msg = std::move(front);
        queue_it->second.pop_front();
        break;
      }
      if (timeout.count() <= 0) {
        return Status::NotFound("no pending message from '" + from +
                                "' to '" + to + "'");
      }
      // Wake at the earliest of the transport deadline, the token's own
      // deadline, and the poll slice, so cancellation and deadline expiry
      // are noticed while the channel stays silent.
      auto wake = std::min(deadline,
                           std::chrono::steady_clock::now() + kCancelPollSlice);
      if (cancel != nullptr && cancel->HasDeadline()) {
        wake = std::min(wake, cancel->deadline());
      }
      (void)endpoint->arrival.WaitUntil(endpoint->mutex, wake);
      // Re-scan first: a frame that landed during the wait wins over any
      // concurrently tripped deadline or cancellation.
      auto late_it = endpoint->queues.find(queue_key);
      if (late_it != endpoint->queues.end() && !late_it->second.empty()) {
        continue;
      }
      if (cancel != nullptr) {
        Status live = cancel->Check();
        if (!live.ok()) {
          return Status(live.code(),
                        live.message() + ReceiveContext(session, from, to,
                                                        expected_topic));
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::Unavailable(
            "no message from '" + from + "' to '" + to + "' within " +
            std::to_string(timeout.count()) + " ms" +
            ReceiveContext(session, from, to, expected_topic) +
            ": peer unreachable or stalled");
      }
    }
  }

  // Verification and decryption run outside the queue lock, against the
  // channel's cached context (and cached name — no per-frame string
  // building). Steady state resolves both with the endpoint above; only
  // the channel's first-ever frame pays the locked create-on-use lookup.
  if (security() == TransportSecurity::kAuthenticatedEncryption) {
    if (channel == nullptr) channel = ChannelFor(session, from, to);
    PPC_ASSIGN_OR_RETURN(
        msg.payload,
        channel->crypto->Open(msg.topic, msg.payload, channel->name));
  }
  return msg;
}

size_t ChannelTransport::PendingCount(const std::string& to) const {
  Endpoint* endpoint = FindEndpoint(to);
  if (endpoint == nullptr) return 0;
  MutexLock lock(endpoint->mutex);
  size_t total = 0;
  for (const auto& [key, queue] : endpoint->queues) total += queue.size();
  return total;
}

size_t ChannelTransport::PendingCountOn(const std::string& session,
                                        const std::string& to) const {
  Endpoint* endpoint = FindEndpoint(to);
  if (endpoint == nullptr) return 0;
  MutexLock lock(endpoint->mutex);
  size_t total = 0;
  for (const auto& [key, queue] : endpoint->queues) {
    if (key.first == session) total += queue.size();
  }
  return total;
}

ChannelStats ChannelTransport::StatsFor(const std::string& from,
                                        const std::string& to) const {
  // Sums the from -> to channels of every session: what this endpoint
  // shipped between the two parties, regardless of the session it
  // belonged to. StatsOn isolates one session.
  MutexLock lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [key, state] : channels_) {
    if (std::get<1>(key) != from || std::get<2>(key) != to || !state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

ChannelStats ChannelTransport::StatsOn(const std::string& session,
                                       const std::string& from,
                                       const std::string& to) const {
  MutexLock lock(registry_mutex_);
  auto it = channels_.find(ChannelKey(session, from, to));
  if (it == channels_.end() || !it->second) return ChannelStats{};
  ChannelStats stats;
  stats.messages = it->second->messages.load(std::memory_order_relaxed);
  stats.payload_bytes =
      it->second->payload_bytes.load(std::memory_order_relaxed);
  stats.wire_bytes = it->second->wire_bytes.load(std::memory_order_relaxed);
  return stats;
}

ChannelStats ChannelTransport::TotalSentBy(const std::string& party) const {
  MutexLock lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [key, state] : channels_) {
    if (std::get<1>(key) != party || !state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

ChannelStats ChannelTransport::TotalSentByOn(const std::string& session,
                                             const std::string& party) const {
  MutexLock lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [key, state] : channels_) {
    if (std::get<0>(key) != session || std::get<1>(key) != party || !state) {
      continue;
    }
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

ChannelStats ChannelTransport::GrandTotal() const {
  MutexLock lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [key, state] : channels_) {
    if (!state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

ChannelStats ChannelTransport::GrandTotalOn(const std::string& session) const {
  MutexLock lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [key, state] : channels_) {
    if (std::get<0>(key) != session || !state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void ChannelTransport::ResetStats() {
  MutexLock lock(registry_mutex_);
  for (auto& [key, state] : channels_) {
    if (!state) continue;
    state->messages.store(0, std::memory_order_relaxed);
    state->payload_bytes.store(0, std::memory_order_relaxed);
    state->wire_bytes.store(0, std::memory_order_relaxed);
    // nonce_counter deliberately survives: fresh nonces forever.
  }
}

void ChannelTransport::AddTapEntry(const std::string& from,
                                   const std::string& to, TapEntry entry) {
  MutexLock lock(tap_mutex_);
  taps_[std::make_pair(from, to)].push_back(std::move(entry));
}

void ChannelTransport::AddTap(const std::string& from, const std::string& to,
                              Tap tap) {
  AddTapEntry(from, to, TapEntry{false, std::string(), std::move(tap)});
}

void ChannelTransport::AddTapOn(const std::string& session,
                                const std::string& from, const std::string& to,
                                Tap tap) {
  AddTapEntry(from, to, TapEntry{true, session, std::move(tap)});
}

Status ChannelTransport::SetNonceCounterForTesting(const std::string& session,
                                                   const std::string& from,
                                                   const std::string& to,
                                                   uint64_t value) {
  if (security_ != TransportSecurity::kAuthenticatedEncryption) {
    return Status::FailedPrecondition(
        "plaintext transports have no nonce counters");
  }
  ChannelState* channel = ChannelFor(session, from, to);
  channel->nonce_counter.store(value, std::memory_order_relaxed);
  return Status::OK();
}

void ChannelTransport::PurgeSession(const std::string& session) {
  // Snapshot the endpoints under the registry lock, then drain each
  // endpoint's session queues under its own mutex — same registry ->
  // endpoint lock order as the send path.
  std::vector<Endpoint*> endpoints;
  {
    MutexLock lock(registry_mutex_);
    for (auto it = channels_.begin(); it != channels_.end();) {
      if (std::get<0>(it->first) == session) {
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
    endpoints.reserve(parties_.size());
    for (const auto& [name, endpoint] : parties_) {
      endpoints.push_back(endpoint.get());
    }
  }
  for (Endpoint* endpoint : endpoints) {
    {
      MutexLock lock(endpoint->mutex);
      for (auto it = endpoint->queues.begin(); it != endpoint->queues.end();) {
        if (it->first.first == session) {
          it = endpoint->queues.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Wake blocked receivers so a waiter on the purged session re-polls
    // its cancel token instead of sleeping out its slice.
    endpoint->arrival.NotifyAll();
  }
}

}  // namespace ppc
