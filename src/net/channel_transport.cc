#include "net/channel_transport.h"

#include "net/secure_channel.h"

namespace ppc {

ChannelTransport::ChannelTransport(TransportSecurity security)
    : security_(security), master_key_(SecureChannel::kMasterKey) {}

ChannelTransport::Endpoint* ChannelTransport::FindEndpoint(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return FindEndpointLocked(name);
}

ChannelTransport::Endpoint* ChannelTransport::FindEndpointLocked(
    const std::string& name) const {
  auto it = parties_.find(name);
  return it == parties_.end() ? nullptr : it->second.get();
}

ChannelTransport::ChannelState* ChannelTransport::ChannelForLocked(
    const std::string& from, const std::string& to) {
  auto& slot = channels_[std::make_pair(from, to)];
  if (!slot) {
    slot = std::make_unique<ChannelState>();
    slot->name = from + "->" + to;
    if (security_ == TransportSecurity::kAuthenticatedEncryption) {
      // All key derivation and key expansion for this directed channel
      // happens here, once; every later Seal/Open reuses the context.
      slot->crypto = std::make_unique<SecureChannel::Context>(
          SecureChannel::ChannelKey(master_key_, from, to));
    }
  }
  return slot.get();
}

ChannelTransport::Endpoint* ChannelTransport::ResolveReceive(
    const std::string& to, const std::string& from,
    ChannelState** channel) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  Endpoint* endpoint = FindEndpointLocked(to);
  if (endpoint == nullptr) return nullptr;
  if (channel != nullptr) {
    // Look up without creating: a Receive for a sender that never sends
    // must leave no channel state behind. The state is created lazily
    // (ChannelFor) only once a frame has actually arrived.
    auto it = channels_.find(std::make_pair(from, to));
    *channel = (it != channels_.end()) ? it->second.get() : nullptr;
  }
  return endpoint;
}

ChannelTransport::ChannelState* ChannelTransport::ChannelFor(
    const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return ChannelForLocked(from, to);
}

Result<std::string> ChannelTransport::PrepareFrame(const std::string& from,
                                                   const std::string& to,
                                                   const std::string& topic,
                                                   const std::string& payload,
                                                   ChannelState* channel) {
  // Frame construction runs outside every lock; concurrent senders only
  // contend on the atomic nonce counter.
  std::string wire;
  if (security_ == TransportSecurity::kPlaintext) {
    wire = payload;
  } else {
    PPC_ASSIGN_OR_RETURN(
        wire, channel->crypto->Seal(
                  topic,
                  channel->nonce_counter.fetch_add(1,
                                                   std::memory_order_relaxed),
                  payload));
  }

  channel->messages.fetch_add(1, std::memory_order_relaxed);
  channel->payload_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  channel->wire_bytes.fetch_add(wire.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> tap_lock(tap_mutex_);
    auto tap_it = taps_.find(std::make_pair(from, to));
    if (tap_it != taps_.end()) {
      WireFrame frame{from, to, topic, wire};
      for (const Tap& tap : tap_it->second) tap(frame);
    }
  }
  return wire;
}

void ChannelTransport::DeliverLocal(Endpoint* endpoint, Message message) {
  {
    std::lock_guard<std::mutex> lock(endpoint->mutex);
    endpoint->queues[message.from].push_back(std::move(message));
  }
  endpoint->arrival.notify_all();
}

Result<Message> ChannelTransport::Receive(const std::string& to,
                                          const std::string& from,
                                          const std::string& expected_topic) {
  // One registry lock resolves both the endpoint and the channel's
  // cached crypto state up front.
  ChannelState* channel = nullptr;
  Endpoint* endpoint = ResolveReceive(
      to, from,
      security() == TransportSecurity::kAuthenticatedEncryption ? &channel
                                                                : nullptr);
  if (endpoint == nullptr) {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  const std::chrono::milliseconds timeout = receive_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;

  Message msg;
  {
    std::unique_lock<std::mutex> lock(endpoint->mutex);
    for (;;) {
      auto queue_it = endpoint->queues.find(from);
      if (queue_it != endpoint->queues.end() && !queue_it->second.empty()) {
        Message& front = queue_it->second.front();
        if (!expected_topic.empty() && front.topic != expected_topic) {
          return Status::ProtocolViolation(
              "expected topic '" + expected_topic + "' from '" + from +
              "' but next message has topic '" + front.topic + "'");
        }
        msg = std::move(front);
        queue_it->second.pop_front();
        break;
      }
      if (timeout.count() <= 0) {
        return Status::NotFound("no pending message from '" + from +
                                "' to '" + to + "'");
      }
      if (endpoint->arrival.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        // Re-check once: the frame may have landed between the last scan
        // and the deadline.
        auto late_it = endpoint->queues.find(from);
        if (late_it != endpoint->queues.end() && !late_it->second.empty()) {
          continue;
        }
        return Status::NotFound("no message from '" + from + "' to '" + to +
                                "' within " + std::to_string(timeout.count()) +
                                " ms");
      }
    }
  }

  // Verification and decryption run outside the queue lock, against the
  // channel's cached context (and cached name — no per-frame string
  // building). Steady state resolves both with the endpoint above; only
  // the channel's first-ever frame pays the locked create-on-use lookup.
  if (security() == TransportSecurity::kAuthenticatedEncryption) {
    if (channel == nullptr) channel = ChannelFor(from, to);
    PPC_ASSIGN_OR_RETURN(
        msg.payload,
        channel->crypto->Open(msg.topic, msg.payload, channel->name));
  }
  return msg;
}

size_t ChannelTransport::PendingCount(const std::string& to) const {
  Endpoint* endpoint = FindEndpoint(to);
  if (endpoint == nullptr) return 0;
  std::lock_guard<std::mutex> lock(endpoint->mutex);
  size_t total = 0;
  for (const auto& [from, queue] : endpoint->queues) total += queue.size();
  return total;
}

ChannelStats ChannelTransport::StatsFor(const std::string& from,
                                        const std::string& to) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = channels_.find(std::make_pair(from, to));
  if (it == channels_.end() || !it->second) return ChannelStats{};
  ChannelStats stats;
  stats.messages = it->second->messages.load(std::memory_order_relaxed);
  stats.payload_bytes =
      it->second->payload_bytes.load(std::memory_order_relaxed);
  stats.wire_bytes = it->second->wire_bytes.load(std::memory_order_relaxed);
  return stats;
}

ChannelStats ChannelTransport::TotalSentBy(const std::string& party) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [channel, state] : channels_) {
    if (channel.first != party || !state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

ChannelStats ChannelTransport::GrandTotal() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  ChannelStats total;
  for (const auto& [channel, state] : channels_) {
    if (!state) continue;
    total.messages += state->messages.load(std::memory_order_relaxed);
    total.payload_bytes += state->payload_bytes.load(std::memory_order_relaxed);
    total.wire_bytes += state->wire_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void ChannelTransport::ResetStats() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& [channel, state] : channels_) {
    if (!state) continue;
    state->messages.store(0, std::memory_order_relaxed);
    state->payload_bytes.store(0, std::memory_order_relaxed);
    state->wire_bytes.store(0, std::memory_order_relaxed);
    // nonce_counter deliberately survives: fresh nonces forever.
  }
}

void ChannelTransport::AddTap(const std::string& from, const std::string& to,
                              Tap tap) {
  std::lock_guard<std::mutex> lock(tap_mutex_);
  taps_[std::make_pair(from, to)].push_back(std::move(tap));
}

}  // namespace ppc
