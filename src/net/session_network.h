#ifndef PPC_NET_SESSION_NETWORK_H_
#define PPC_NET_SESSION_NETWORK_H_

#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "net/network.h"

namespace ppc {

/// A `Network` view that binds one session id over a shared transport:
/// every plain call (`Send`, `Receive`, `PendingCount`, ...) becomes the
/// corresponding session-scoped call on the base. The protocol stack —
/// parties, schedule executors, `PartyRunner` — takes a `Network*` and
/// knows nothing about sessions; handing it one of these runs an entire
/// clustering session multiplexed over whatever transport (and, on TCP,
/// whatever pooled connections) the base provides. `SessionRegistry`
/// creates one view per concurrent session.
///
/// Semantics:
///   * `RegisterParty` tolerates kAlreadyExists: parties belong to the
///     transport, not the session, and N concurrent sessions share them.
///   * Stats/pending/taps/inject are scoped to the bound session.
///   * `ResetStats`, `set_receive_timeout` and `security` remain
///     transport-global — a view cannot reset or retime just its slice.
///   * The explicitly-scoped `...On` calls pass through unchanged, so a
///     view composes with session-aware callers too.
///
/// The view holds no state beyond the id; it is as thread-safe as the
/// base and must not outlive it.
class SessionNetwork : public Network {
 public:
  SessionNetwork(Network* base, std::string session)
      : base_(base), session_(std::move(session)) {}

  const std::string& session() const { return session_; }
  Network* base() const { return base_; }

  Status RegisterParty(const std::string& name) override {
    Status status = base_->RegisterParty(name);
    if (status.code() == StatusCode::kAlreadyExists) return Status::OK();
    return status;
  }
  bool HasParty(const std::string& name) const override {
    return base_->HasParty(name);
  }
  Status Send(const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override {
    return base_->SendOn(session_, from, to, topic, std::move(payload));
  }
  Result<Message> Receive(const std::string& to, const std::string& from,
                          const std::string& expected_topic = "") override {
    return base_->ReceiveOn(session_, to, from, expected_topic);
  }
  void set_receive_timeout(std::chrono::milliseconds timeout) override {
    base_->set_receive_timeout(timeout);
  }
  std::chrono::milliseconds receive_timeout() const override {
    return base_->receive_timeout();
  }
  size_t PendingCount(const std::string& to) const override {
    return base_->PendingCountOn(session_, to);
  }
  ChannelStats StatsFor(const std::string& from,
                        const std::string& to) const override {
    return base_->StatsOn(session_, from, to);
  }
  ChannelStats TotalSentBy(const std::string& party) const override {
    return base_->TotalSentByOn(session_, party);
  }
  ChannelStats GrandTotal() const override {
    return base_->GrandTotalOn(session_);
  }
  void ResetStats() override { base_->ResetStats(); }
  void AddTap(const std::string& from, const std::string& to,
              Tap tap) override {
    base_->AddTapOn(session_, from, to, std::move(tap));
  }
  Status InjectFrame(const std::string& from, const std::string& to,
                     const std::string& topic,
                     std::string wire_bytes) override {
    return base_->InjectFrameOn(session_, from, to, topic,
                                std::move(wire_bytes));
  }
  TransportSecurity security() const override { return base_->security(); }

  // Explicit-session calls pass through untouched.
  Status SendOn(const std::string& session, const std::string& from,
                const std::string& to, const std::string& topic,
                std::string payload) override {
    return base_->SendOn(session, from, to, topic, std::move(payload));
  }
  Result<Message> ReceiveOn(const std::string& session, const std::string& to,
                            const std::string& from,
                            const std::string& expected_topic = "") override {
    return base_->ReceiveOn(session, to, from, expected_topic);
  }
  size_t PendingCountOn(const std::string& session,
                        const std::string& to) const override {
    return base_->PendingCountOn(session, to);
  }
  ChannelStats StatsOn(const std::string& session, const std::string& from,
                       const std::string& to) const override {
    return base_->StatsOn(session, from, to);
  }
  ChannelStats TotalSentByOn(const std::string& session,
                             const std::string& party) const override {
    return base_->TotalSentByOn(session, party);
  }
  ChannelStats GrandTotalOn(const std::string& session) const override {
    return base_->GrandTotalOn(session);
  }
  void AddTapOn(const std::string& session, const std::string& from,
                const std::string& to, Tap tap) override {
    base_->AddTapOn(session, from, to, std::move(tap));
  }
  Status InjectFrameOn(const std::string& session, const std::string& from,
                       const std::string& to, const std::string& topic,
                       std::string wire_bytes) override {
    return base_->InjectFrameOn(session, from, to, topic,
                                std::move(wire_bytes));
  }

  // Cancellation-aware calls: the plain form binds the view's session,
  // the explicit form passes through, purge forwards to the base.
  Result<Message> ReceiveCancellable(const std::string& to,
                                     const std::string& from,
                                     const std::string& expected_topic,
                                     const CancelToken* cancel) override {
    return base_->ReceiveOnCancellable(session_, to, from, expected_topic,
                                       cancel);
  }
  Result<Message> ReceiveOnCancellable(const std::string& session,
                                       const std::string& to,
                                       const std::string& from,
                                       const std::string& expected_topic,
                                       const CancelToken* cancel) override {
    return base_->ReceiveOnCancellable(session, to, from, expected_topic,
                                       cancel);
  }
  void PurgeSession(const std::string& session) override {
    base_->PurgeSession(session);
  }

 private:
  Network* base_;
  std::string session_;
};

}  // namespace ppc

#endif  // PPC_NET_SESSION_NETWORK_H_
