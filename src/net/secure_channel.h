#ifndef PPC_NET_SECURE_CHANNEL_H_
#define PPC_NET_SECURE_CHANNEL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace ppc {

/// The per-directed-channel transport cryptography shared by every
/// `Network` backend: AES-128-CTR encryption plus a truncated
/// HMAC-SHA-256 MAC bound to the message topic. One implementation keeps
/// the in-memory simulator and the TCP transport bit-identical on the
/// wire, so eavesdropping experiments and byte accounting transfer
/// between deployments.
///
/// Frame layout (authenticated-encryption mode):
///
///   nonce (8 bytes, little-endian counter) ||
///   AES-128-CTR(payload)                   ||
///   HMAC-SHA-256(topic ":" nonce ciphertext)[0..16)
///
/// Keys are derived from a per-channel key, itself derived from a master
/// key and the directed channel name — modeling transport keys
/// established out of band (e.g. TLS); the protocol's security analysis
/// treats channel encryption as given.
///
/// Hot-path usage is through `Context`: the enc/mac subkey derivations,
/// the AES key expansion, and the HMAC pad midstates are computed once per
/// directed channel, so steady-state Seal/Open performs zero key
/// derivations. The static `Seal`/`Open` are the one-shot reference —
/// identical bytes, re-deriving everything per call.
class SecureChannel {
 public:
  static constexpr size_t kNonceLength = 8;
  static constexpr size_t kMacLength = 16;
  /// Length of a connection-authentication challenge (TCP preamble
  /// handshake).
  static constexpr size_t kChallengeLength = 16;

  /// The master key every backend derives channel keys from. A real
  /// deployment would provision per-site keys; the constant models the
  /// "channels are secured out of band" assumption and keeps independent
  /// processes interoperable.
  static const char kMasterKey[];

  /// The cached cryptographic state of one directed channel: the AES-128
  /// key schedule for the derived enc subkey and the precomputed HMAC
  /// ipad/opad midstates for the derived mac subkey. Construction performs
  /// all key derivation; Seal/Open afterwards touch only the payload.
  /// Immutable after construction — safe for concurrent Seal/Open calls.
  class Context {
   public:
    explicit Context(const std::string& channel_key);

    /// Seals `payload` into a wire frame, using `nonce_counter` as the
    /// (never reused) per-channel nonce. The frame is assembled in one
    /// pre-sized buffer: the payload is copied in once, encrypted in
    /// place, and MACed incrementally — no intermediate full-payload
    /// copies.
    Result<std::string> Seal(const std::string& topic, uint64_t nonce_counter,
                             const std::string& payload) const;

    /// Verifies and decrypts a wire frame produced by `Seal`.
    /// `channel_name` only decorates error messages ("A->B"). Returns
    /// kDataLoss on frames shorter than nonce+mac and kProtocolViolation
    /// on MAC mismatch. The MAC is checked incrementally over the frame
    /// bytes; only the plaintext buffer is allocated.
    Result<std::string> Open(const std::string& topic,
                             const std::string& wire,
                             const std::string& channel_name) const;

   private:
    Aes128Ctr ctr_;
    HmacSha256::Key mac_key_;
  };

  /// Derives the directed-channel key for `from` -> `to`.
  static std::string ChannelKey(const std::string& master_key,
                                const std::string& from,
                                const std::string& to);

  /// Derives the directed-channel key for `from` -> `to` within logical
  /// session `session`. The default session (empty id) uses the plain
  /// channel derivation above, so single-session deployments stay
  /// byte-identical on the wire; every other session gets its own key, so
  /// a frame sealed on one session can never verify on another.
  static std::string ChannelKey(const std::string& master_key,
                                const std::string& from,
                                const std::string& to,
                                const std::string& session);

  /// Derives the key both ends of a TCP connection prove knowledge of in
  /// the challenge-response preamble (`TcpNetwork`), so arbitrary
  /// processes cannot attach to a listener. Separate label from the
  /// channel keys: a connection authenticates an endpoint, not a directed
  /// party channel.
  static std::string ConnectionAuthKey(const std::string& master_key);

  /// The expected answer to a connection-auth `challenge`:
  /// HMAC(auth_key, label || challenge) truncated to kMacLength. `label`
  /// distinguishes the two handshake directions so a response can never be
  /// reflected back.
  static std::string ConnectionAuthResponse(const std::string& auth_key,
                                            const std::string& label,
                                            const std::string& challenge);

  /// One-shot reference for `Context::Seal`: derives the channel context
  /// and seals in one call. Bit-identical output; pay the derivation cost
  /// per frame only where a channel is used once (tests, tools).
  static Result<std::string> Seal(const std::string& channel_key,
                                  const std::string& topic,
                                  uint64_t nonce_counter,
                                  const std::string& payload);

  /// One-shot reference for `Context::Open`; see `Seal`.
  static Result<std::string> Open(const std::string& channel_key,
                                  const std::string& topic,
                                  const std::string& wire,
                                  const std::string& channel_name);
};

}  // namespace ppc

#endif  // PPC_NET_SECURE_CHANNEL_H_
