#ifndef PPC_NET_SECURE_CHANNEL_H_
#define PPC_NET_SECURE_CHANNEL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ppc {

/// The per-directed-channel transport cryptography shared by every
/// `Network` backend: AES-128-CTR encryption plus a truncated
/// HMAC-SHA-256 MAC bound to the message topic. One implementation keeps
/// the in-memory simulator and the TCP transport bit-identical on the
/// wire, so eavesdropping experiments and byte accounting transfer
/// between deployments.
///
/// Frame layout (authenticated-encryption mode):
///
///   nonce (8 bytes, little-endian counter) ||
///   AES-128-CTR(payload)                   ||
///   HMAC-SHA-256(topic ":" nonce ciphertext)[0..16)
///
/// Keys are derived from a per-channel key, itself derived from a master
/// key and the directed channel name — modeling transport keys
/// established out of band (e.g. TLS); the protocol's security analysis
/// treats channel encryption as given.
class SecureChannel {
 public:
  static constexpr size_t kNonceLength = 8;
  static constexpr size_t kMacLength = 16;
  /// Length of a connection-authentication challenge (TCP preamble
  /// handshake).
  static constexpr size_t kChallengeLength = 16;

  /// The master key every backend derives channel keys from. A real
  /// deployment would provision per-site keys; the constant models the
  /// "channels are secured out of band" assumption and keeps independent
  /// processes interoperable.
  static const char kMasterKey[];

  /// Derives the directed-channel key for `from` -> `to`.
  static std::string ChannelKey(const std::string& master_key,
                                const std::string& from,
                                const std::string& to);

  /// Derives the key both ends of a TCP connection prove knowledge of in
  /// the challenge-response preamble (`TcpNetwork`), so arbitrary
  /// processes cannot attach to a listener. Separate label from the
  /// channel keys: a connection authenticates an endpoint, not a directed
  /// party channel.
  static std::string ConnectionAuthKey(const std::string& master_key);

  /// The expected answer to a connection-auth `challenge`:
  /// HMAC(auth_key, label || challenge) truncated to kMacLength. `label`
  /// distinguishes the two handshake directions so a response can never be
  /// reflected back.
  static std::string ConnectionAuthResponse(const std::string& auth_key,
                                            const std::string& label,
                                            const std::string& challenge);

  /// Seals `payload` into a wire frame under `channel_key`, using
  /// `nonce_counter` as the (never reused) per-channel nonce.
  static Result<std::string> Seal(const std::string& channel_key,
                                  const std::string& topic,
                                  uint64_t nonce_counter,
                                  const std::string& payload);

  /// Verifies and decrypts a wire frame produced by `Seal`. `channel_name`
  /// only decorates error messages ("A->B"). Returns kDataLoss on frames
  /// shorter than nonce+mac and kProtocolViolation on MAC mismatch.
  static Result<std::string> Open(const std::string& channel_key,
                                  const std::string& topic,
                                  const std::string& wire,
                                  const std::string& channel_name);
};

}  // namespace ppc

#endif  // PPC_NET_SECURE_CHANNEL_H_
