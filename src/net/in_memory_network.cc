#include "net/in_memory_network.h"

namespace ppc {

InMemoryNetwork::InMemoryNetwork(TransportSecurity security)
    : ChannelTransport(security) {}

Status InMemoryNetwork::RegisterParty(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("party name must be non-empty");
  }
  MutexLock lock(registry_mutex_);
  auto [it, inserted] = parties_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("party '" + name + "' already registered");
  }
  it->second = std::make_unique<Endpoint>();
  return Status::OK();
}

bool InMemoryNetwork::HasParty(const std::string& name) const {
  return FindEndpoint(name) != nullptr;
}

Status InMemoryNetwork::ResolveRoute(const std::string& session,
                                     const std::string& from,
                                     const std::string& to,
                                     Endpoint** receiver,
                                     ChannelState** channel) {
  MutexLock lock(registry_mutex_);
  if (parties_.find(from) == parties_.end()) {
    return Status::NotFound("unknown sender '" + from + "'");
  }
  auto to_it = parties_.find(to);
  if (to_it == parties_.end()) {
    return Status::NotFound("unknown receiver '" + to + "'");
  }
  *receiver = to_it->second.get();
  if (channel != nullptr) *channel = ChannelForLocked(session, from, to);
  return Status::OK();
}

Status InMemoryNetwork::SendOn(const std::string& session,
                               const std::string& from, const std::string& to,
                               const std::string& topic, std::string payload) {
  Endpoint* receiver = nullptr;
  ChannelState* channel = nullptr;
  PPC_RETURN_IF_ERROR(ResolveRoute(session, from, to, &receiver, &channel));
  PPC_ASSIGN_OR_RETURN(
      std::string wire,
      PrepareFrame(session, from, to, topic, payload, channel));
  DeliverLocal(receiver, Message{from, to, topic, std::move(wire), session});
  return Status::OK();
}

Status InMemoryNetwork::InjectFrameOn(const std::string& session,
                                      const std::string& from,
                                      const std::string& to,
                                      const std::string& topic,
                                      std::string wire_bytes) {
  Endpoint* receiver = nullptr;
  PPC_RETURN_IF_ERROR(ResolveRoute(session, from, to, &receiver, nullptr));
  DeliverLocal(receiver,
               Message{from, to, topic, std::move(wire_bytes), session});
  return Status::OK();
}

}  // namespace ppc
