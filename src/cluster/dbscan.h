#ifndef PPC_CLUSTER_DBSCAN_H_
#define PPC_CLUSTER_DBSCAN_H_

#include <vector>

#include "common/result.h"
#include "distance/dissimilarity_matrix.h"

namespace ppc {

/// Density-based clustering over a precomputed dissimilarity matrix.
///
/// Included to back the paper's claim that the global dissimilarity matrix
/// is clustering-algorithm agnostic ("it can be used by any standard
/// clustering algorithm") and that non-partitioning methods can "discover
/// clusters of arbitrary shapes".
class Dbscan {
 public:
  struct Options {
    double eps = 0.1;     // Neighborhood radius (post-normalization scale).
    size_t min_points = 4;  // Core-point density threshold (incl. self).
  };

  /// Noise label in the returned assignment.
  static constexpr int kNoise = -1;

  /// Labels each object with a cluster id >= 0, or kNoise.
  static Result<std::vector<int>> Run(const DissimilarityMatrix& matrix,
                                      const Options& options);
};

}  // namespace ppc

#endif  // PPC_CLUSTER_DBSCAN_H_
