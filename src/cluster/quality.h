#ifndef PPC_CLUSTER_QUALITY_H_
#define PPC_CLUSTER_QUALITY_H_

#include <vector>

#include "common/result.h"
#include "distance/dissimilarity_matrix.h"

namespace ppc {

/// Clustering quality measures.
///
/// Two families: *internal* measures computed from the (secret)
/// dissimilarity matrix — these are what the third party may publish
/// ("clustering quality parameters such as average of square distance
/// between members", paper Sec. 5) — and *external* measures against
/// ground-truth labels, used only by experiments.
class Quality {
 public:
  /// Mean silhouette coefficient over all objects (internal; in [-1, 1]).
  /// Objects in singleton clusters contribute 0.
  static Result<double> Silhouette(const DissimilarityMatrix& matrix,
                                   const std::vector<int>& labels);

  /// Per-cluster average of squared pairwise member distances — the paper's
  /// example quality parameter. Singleton clusters score 0. Order follows
  /// ascending cluster id.
  static Result<std::vector<double>> WithinClusterMeanSquaredDistance(
      const DissimilarityMatrix& matrix, const std::vector<int>& labels);

  /// Rand index between two labelings (external; in [0, 1]).
  static Result<double> RandIndex(const std::vector<int>& a,
                                  const std::vector<int>& b);

  /// Hubert-Arabie adjusted Rand index (external; 1 = identical, ~0 =
  /// chance).
  static Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                          const std::vector<int>& b);

  /// Purity of `predicted` against `truth` (external; in (0, 1]).
  static Result<double> Purity(const std::vector<int>& predicted,
                               const std::vector<int>& truth);

  /// Pairwise F1 score of `predicted` against `truth` (external).
  static Result<double> PairwiseF1(const std::vector<int>& predicted,
                                   const std::vector<int>& truth);
};

}  // namespace ppc

#endif  // PPC_CLUSTER_QUALITY_H_
