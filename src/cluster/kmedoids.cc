#include "cluster/kmedoids.h"

#include <algorithm>
#include <limits>

namespace ppc {

namespace {

double AssignmentCost(const DissimilarityMatrix& matrix,
                      const std::vector<size_t>& medoids,
                      std::vector<int>* labels) {
  const size_t n = matrix.num_objects();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (size_t c = 0; c < medoids.size(); ++c) {
      double d = matrix.at(i, medoids[c]);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    if (labels) (*labels)[i] = best_c;
    total += best;
  }
  return total;
}

}  // namespace

Result<KMedoids::Assignment> KMedoids::Run(const DissimilarityMatrix& matrix,
                                           const Options& options) {
  const size_t n = matrix.num_objects();
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("k must be in [1, num_objects]");
  }

  // BUILD: greedily add the medoid that reduces total cost the most.
  std::vector<size_t> medoids;
  std::vector<bool> is_medoid(n, false);
  // First medoid: the object minimizing the sum of distances to all others.
  {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t j = 0; j < n; ++j) sum += matrix.at(i, j);
      if (sum < best) {
        best = sum;
        best_i = i;
      }
    }
    medoids.push_back(best_i);
    is_medoid[best_i] = true;
  }
  std::vector<double> nearest(n);
  auto refresh_nearest = [&]() {
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t m : medoids) best = std::min(best, matrix.at(i, m));
      nearest[i] = best;
    }
  };
  refresh_nearest();
  while (medoids.size() < options.k) {
    double best_gain = -std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < n; ++i) {
      if (is_medoid[i]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < n; ++j) {
        double d = matrix.at(i, j);
        if (d < nearest[j]) gain += nearest[j] - d;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
      }
    }
    medoids.push_back(best_i);
    is_medoid[best_i] = true;
    refresh_nearest();
  }

  // SWAP: try replacing each medoid with each non-medoid while it improves.
  std::vector<int> labels(n, 0);
  double cost = AssignmentCost(matrix, medoids, &labels);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool improved = false;
    for (size_t c = 0; c < medoids.size(); ++c) {
      for (size_t candidate = 0; candidate < n; ++candidate) {
        if (is_medoid[candidate]) continue;
        size_t old = medoids[c];
        medoids[c] = candidate;
        double new_cost = AssignmentCost(matrix, medoids, nullptr);
        if (new_cost + 1e-12 < cost) {
          cost = new_cost;
          is_medoid[old] = false;
          is_medoid[candidate] = true;
          improved = true;
        } else {
          medoids[c] = old;
        }
      }
    }
    if (!improved) break;
  }

  Assignment out;
  out.labels.resize(n);
  out.total_cost = AssignmentCost(matrix, medoids, &out.labels);
  out.medoids = std::move(medoids);
  return out;
}

}  // namespace ppc
