#include "cluster/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ppc {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Shared machinery for both algorithms: a dense working copy of the
/// dissimilarity matrix with Lance-Williams updates. Ward operates on
/// squared distances internally; heights are reported in distance units.
class Workspace {
 public:
  Workspace(const DissimilarityMatrix& matrix, Linkage linkage)
      : n_(matrix.num_objects()),
        linkage_(linkage),
        distance_(n_ * n_, 0.0),
        size_(n_, 1),
        active_(n_, true) {
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = 0; j < i; ++j) {
        double d = matrix.at(i, j);
        if (linkage_ == Linkage::kWard) d = d * d;
        distance_[i * n_ + j] = distance_[j * n_ + i] = d;
      }
    }
  }

  size_t n() const { return n_; }
  bool active(size_t i) const { return active_[i]; }
  double dist(size_t i, size_t j) const { return distance_[i * n_ + j]; }

  /// Converts an internal working distance to a reported merge height.
  double Height(double working_distance) const {
    return linkage_ == Linkage::kWard ? std::sqrt(working_distance)
                                      : working_distance;
  }

  /// Merges cluster `b` into cluster `a` (slot `a` survives) and applies
  /// the Lance-Williams update to every other active cluster.
  void Merge(size_t a, size_t b) {
    double d_ab = dist(a, b);
    double na = static_cast<double>(size_[a]);
    double nb = static_cast<double>(size_[b]);
    for (size_t k = 0; k < n_; ++k) {
      if (!active_[k] || k == a || k == b) continue;
      double d_ak = dist(a, k);
      double d_bk = dist(b, k);
      double updated = 0.0;
      switch (linkage_) {
        case Linkage::kSingle:
          updated = std::min(d_ak, d_bk);
          break;
        case Linkage::kComplete:
          updated = std::max(d_ak, d_bk);
          break;
        case Linkage::kAverage:
          updated = (na * d_ak + nb * d_bk) / (na + nb);
          break;
        case Linkage::kWard: {
          double nk = static_cast<double>(size_[k]);
          updated = ((na + nk) * d_ak + (nb + nk) * d_bk - nk * d_ab) /
                    (na + nb + nk);
          break;
        }
      }
      distance_[a * n_ + k] = distance_[k * n_ + a] = updated;
    }
    size_[a] += size_[b];
    active_[b] = false;
  }

  size_t cluster_size(size_t i) const { return size_[i]; }

 private:
  size_t n_;
  Linkage linkage_;
  std::vector<double> distance_;
  std::vector<size_t> size_;
  std::vector<bool> active_;
};

/// A merge in slot space, later canonicalized into a Dendrogram.
struct RawMerge {
  size_t rep_a;   // Any leaf index inside cluster a (its slot id).
  size_t rep_b;   // Any leaf index inside cluster b.
  double height;  // Reported (non-squared) height.
};

/// Sorts raw merges by height and relabels them with union-find into the
/// canonical dendrogram node numbering (leaves first, then merges in height
/// order). This is how NN-chain output — whose execution order is not
/// height-sorted — becomes a proper dendrogram.
Dendrogram Canonicalize(size_t n, std::vector<RawMerge> raw) {
  std::stable_sort(raw.begin(), raw.end(),
                   [](const RawMerge& x, const RawMerge& y) {
                     return x.height < y.height;
                   });
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::vector<size_t> node_of(n);
  std::iota(node_of.begin(), node_of.end(), size_t{0});
  std::vector<size_t> leaves_under(n, 1);

  std::vector<MergeStep> merges;
  merges.reserve(raw.size());
  for (size_t k = 0; k < raw.size(); ++k) {
    size_t root_a = find(raw[k].rep_a);
    size_t root_b = find(raw[k].rep_b);
    MergeStep step;
    // Canonical child order (smaller node id first): makes dendrograms and
    // Newick output deterministic across agglomeration algorithms.
    step.left = std::min(node_of[root_a], node_of[root_b]);
    step.right = std::max(node_of[root_a], node_of[root_b]);
    step.height = raw[k].height;
    step.size = leaves_under[root_a] + leaves_under[root_b];
    merges.push_back(step);
    parent[root_a] = root_b;
    node_of[root_b] = n + k;
    leaves_under[root_b] = step.size;
  }
  return Dendrogram(n, std::move(merges));
}

}  // namespace

const char* LinkageToString(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kWard:
      return "ward";
  }
  return "unknown";
}

Result<Dendrogram> Agglomerative::RunNaive(const DissimilarityMatrix& matrix,
                                           Linkage linkage) {
  size_t n = matrix.num_objects();
  if (n == 0) return Status::InvalidArgument("cannot cluster zero objects");
  Workspace work(matrix, linkage);

  std::vector<RawMerge> raw;
  raw.reserve(n - 1);
  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the globally closest active pair (ties: smallest indices).
    double best = kInfinity;
    size_t best_a = 0, best_b = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!work.active(i)) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!work.active(j)) continue;
        if (work.dist(i, j) < best) {
          best = work.dist(i, j);
          best_a = i;
          best_b = j;
        }
      }
    }
    raw.push_back({best_a, best_b, work.Height(best)});
    work.Merge(best_a, best_b);
  }
  return Canonicalize(n, std::move(raw));
}

Result<Dendrogram> Agglomerative::Run(const DissimilarityMatrix& matrix,
                                      Linkage linkage) {
  size_t n = matrix.num_objects();
  if (n == 0) return Status::InvalidArgument("cannot cluster zero objects");
  Workspace work(matrix, linkage);

  std::vector<RawMerge> raw;
  raw.reserve(n - 1);
  std::vector<size_t> chain;
  chain.reserve(n);

  while (raw.size() + 1 < n) {
    if (chain.empty()) {
      for (size_t i = 0; i < n; ++i) {
        if (work.active(i)) {
          chain.push_back(i);
          break;
        }
      }
    }
    size_t a = chain.back();
    // Nearest active neighbor of `a`; prefer the chain predecessor on ties
    // so reciprocal pairs are detected and the chain terminates.
    size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
    double best = kInfinity;
    size_t best_b = n;
    for (size_t k = 0; k < n; ++k) {
      if (!work.active(k) || k == a) continue;
      double d = work.dist(a, k);
      if (d < best || (d == best && k == prev)) {
        best = d;
        best_b = k;
      }
    }
    if (best_b == prev) {
      raw.push_back({a, best_b, work.Height(best)});
      chain.pop_back();
      chain.pop_back();
      // Keep the surviving slot consistent with Workspace::Merge (a wins).
      work.Merge(a, best_b);
    } else {
      chain.push_back(best_b);
    }
  }
  return Canonicalize(n, std::move(raw));
}

}  // namespace ppc
