#ifndef PPC_CLUSTER_KMEDOIDS_H_
#define PPC_CLUSTER_KMEDOIDS_H_

#include <vector>

#include "common/result.h"
#include "distance/dissimilarity_matrix.h"

namespace ppc {

/// PAM k-medoids over a precomputed dissimilarity matrix.
///
/// This is the *partitioning* comparison point for the paper's argument
/// that hierarchical methods suit mixed data better: unlike k-means — which
/// the paper notes "can not handle string data type for which a 'mean' is
/// not defined" — k-medoids needs only pairwise distances, so it runs on the
/// same matrix; but it still biases toward spherical clusters, which the
/// clustering benchmark (DESIGN.md E14) demonstrates.
class KMedoids {
 public:
  struct Options {
    size_t k = 3;
    size_t max_iterations = 50;
  };

  struct Assignment {
    std::vector<int> labels;      // Cluster id per object.
    std::vector<size_t> medoids;  // Object index of each cluster's medoid.
    double total_cost = 0.0;      // Sum of distances to assigned medoids.
  };

  /// BUILD + SWAP. Fully deterministic: greedy BUILD picks the cost-optimal
  /// medoid at every step (lowest index on ties), so equal inputs always
  /// produce equal assignments — no entropy parameter to thread through.
  static Result<Assignment> Run(const DissimilarityMatrix& matrix,
                                const Options& options);
};

}  // namespace ppc

#endif  // PPC_CLUSTER_KMEDOIDS_H_
