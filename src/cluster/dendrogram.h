#ifndef PPC_CLUSTER_DENDROGRAM_H_
#define PPC_CLUSTER_DENDROGRAM_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace ppc {

/// One agglomerative merge step. Node ids: leaves are 0..n-1; the merge
/// recorded at index k creates internal node n+k.
struct MergeStep {
  size_t left;    // Node id of one merged cluster.
  size_t right;   // Node id of the other.
  double height;  // Linkage distance at which the merge happened.
  size_t size;    // Number of leaves under the new node.
};

/// The full merge tree produced by hierarchical clustering over n objects.
///
/// Merges are stored in application order with nondecreasing heights
/// (monotone linkages). Cutting the tree yields flat cluster labels, which
/// is what the third party publishes (paper Fig. 13).
class Dendrogram {
 public:
  Dendrogram() = default;
  Dendrogram(size_t num_leaves, std::vector<MergeStep> merges);

  size_t num_leaves() const { return num_leaves_; }
  const std::vector<MergeStep>& merges() const { return merges_; }

  /// Labels objects with cluster ids 0..k-1 by undoing the last k-1 merges.
  /// Requires 1 <= k <= n. Labels are canonicalized by first appearance.
  Result<std::vector<int>> CutToClusters(size_t k) const;

  /// Labels objects by applying only merges with height <= `height`.
  std::vector<int> CutAtHeight(double height) const;

  /// True iff merge heights are nondecreasing (sanity check; all linkages
  /// implemented here are monotone).
  bool HeightsMonotone() const;

  /// Renders the merge tree in Newick format — the interchange format of
  /// phylogenetics tools, fitting the paper's bioinformatics motivation.
  /// Branch lengths are height differences (leaves sit at height 0):
  /// `((A0:1,A1:1):1.5,B0:2.5);`. `leaf_names` must supply one name per
  /// leaf; the dendrogram must be complete (n-1 merges).
  Result<std::string> ToNewick(
      const std::vector<std::string>& leaf_names) const;

 private:
  std::vector<int> LabelsFromMergePrefix(size_t num_merges) const;

  size_t num_leaves_ = 0;
  std::vector<MergeStep> merges_;
};

}  // namespace ppc

#endif  // PPC_CLUSTER_DENDROGRAM_H_
