#ifndef PPC_CLUSTER_AGGLOMERATIVE_H_
#define PPC_CLUSTER_AGGLOMERATIVE_H_

#include "cluster/dendrogram.h"
#include "common/result.h"
#include "distance/dissimilarity_matrix.h"

namespace ppc {

/// Cluster-to-cluster distance update rules (Lance-Williams family).
///
/// The paper deliberately leaves the clustering algorithm pluggable — "the
/// global dissimilarity matrix is a generic data structure ... it can be
/// used by any standard clustering algorithm" — and argues for hierarchical
/// methods because they handle arbitrary shapes and all three data types.
enum class Linkage {
  kSingle,    // min-distance between members.
  kComplete,  // max-distance between members.
  kAverage,   // unweighted mean pairwise distance (UPGMA).
  kWard,      // minimum within-cluster variance increase.
};

/// Canonical name of `linkage`.
const char* LinkageToString(Linkage linkage);

/// Agglomerative hierarchical clustering over a precomputed dissimilarity
/// matrix — the algorithm the third party runs after the protocols finish.
class Agglomerative {
 public:
  /// Nearest-neighbor-chain algorithm: O(n²) time, O(n²) memory. All four
  /// linkages are reducible, so NN-chain produces a dendrogram equivalent
  /// to the greedy algorithm (tested against `RunNaive`).
  static Result<Dendrogram> Run(const DissimilarityMatrix& matrix,
                                Linkage linkage);

  /// Textbook greedy algorithm: repeatedly merge the globally closest pair.
  /// O(n³) time; kept as the reference implementation for property tests
  /// and as the ablation baseline in bench_clustering.
  static Result<Dendrogram> RunNaive(const DissimilarityMatrix& matrix,
                                     Linkage linkage);
};

}  // namespace ppc

#endif  // PPC_CLUSTER_AGGLOMERATIVE_H_
