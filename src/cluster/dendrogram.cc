#include "cluster/dendrogram.h"

#include <map>
#include <numeric>

namespace ppc {

namespace {

/// Union-find over node ids 0..n+m.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Dendrogram::Dendrogram(size_t num_leaves, std::vector<MergeStep> merges)
    : num_leaves_(num_leaves), merges_(std::move(merges)) {}

std::vector<int> Dendrogram::LabelsFromMergePrefix(size_t num_merges) const {
  UnionFind uf(num_leaves_ + merges_.size());
  for (size_t k = 0; k < num_merges && k < merges_.size(); ++k) {
    uf.Union(merges_[k].left, num_leaves_ + k);
    uf.Union(merges_[k].right, num_leaves_ + k);
  }
  std::vector<int> labels(num_leaves_);
  std::map<size_t, int> canonical;
  for (size_t i = 0; i < num_leaves_; ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] =
        canonical.emplace(root, static_cast<int>(canonical.size()));
    (void)inserted;
    labels[i] = it->second;
  }
  return labels;
}

Result<std::vector<int>> Dendrogram::CutToClusters(size_t k) const {
  if (k == 0 || k > num_leaves_) {
    return Status::InvalidArgument("k must be in [1, num_leaves]");
  }
  // After m merges there are n - m clusters, so apply n - k merges.
  return LabelsFromMergePrefix(num_leaves_ - k);
}

std::vector<int> Dendrogram::CutAtHeight(double height) const {
  size_t count = 0;
  while (count < merges_.size() && merges_[count].height <= height) ++count;
  return LabelsFromMergePrefix(count);
}

bool Dendrogram::HeightsMonotone() const {
  for (size_t k = 1; k < merges_.size(); ++k) {
    if (merges_[k].height < merges_[k - 1].height - 1e-12) return false;
  }
  return true;
}

Result<std::string> Dendrogram::ToNewick(
    const std::vector<std::string>& leaf_names) const {
  if (leaf_names.size() != num_leaves_) {
    return Status::InvalidArgument("need one name per leaf");
  }
  if (num_leaves_ == 0) {
    return Status::InvalidArgument("empty dendrogram");
  }
  if (merges_.size() + 1 != num_leaves_) {
    return Status::FailedPrecondition("dendrogram is not complete");
  }

  auto format_length = [](double length) {
    std::string out = std::to_string(length);
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
    return out;
  };

  // Height of each node (leaves at 0, internal nodes at merge height).
  std::vector<double> height(num_leaves_ + merges_.size(), 0.0);
  std::vector<std::string> repr(num_leaves_ + merges_.size());
  for (size_t i = 0; i < num_leaves_; ++i) repr[i] = leaf_names[i];
  for (size_t k = 0; k < merges_.size(); ++k) {
    const MergeStep& merge = merges_[k];
    size_t node = num_leaves_ + k;
    height[node] = merge.height;
    repr[node] = "(" + repr[merge.left] + ":" +
                 format_length(merge.height - height[merge.left]) + "," +
                 repr[merge.right] + ":" +
                 format_length(merge.height - height[merge.right]) + ")";
  }
  if (merges_.empty()) return repr[0] + ";";
  return repr.back() + ";";
}

}  // namespace ppc
