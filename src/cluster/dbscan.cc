#include "cluster/dbscan.h"

#include <deque>

namespace ppc {

Result<std::vector<int>> Dbscan::Run(const DissimilarityMatrix& matrix,
                                     const Options& options) {
  if (options.eps < 0.0) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  if (options.min_points == 0) {
    return Status::InvalidArgument("min_points must be >= 1");
  }
  const size_t n = matrix.num_objects();
  std::vector<int> labels(n, kNoise);
  std::vector<bool> visited(n, false);

  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (matrix.at(i, j) <= options.eps) out.push_back(j);  // Includes i.
    }
    return out;
  };

  int next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    std::vector<size_t> seeds = neighbors_of(i);
    if (seeds.size() < options.min_points) continue;  // Noise (for now).

    int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<size_t> frontier(seeds.begin(), seeds.end());
    while (!frontier.empty()) {
      size_t j = frontier.front();
      frontier.pop_front();
      if (labels[j] == kNoise) labels[j] = cluster;  // Border point claim.
      if (visited[j]) continue;
      visited[j] = true;
      labels[j] = cluster;
      std::vector<size_t> expansion = neighbors_of(j);
      if (expansion.size() >= options.min_points) {
        frontier.insert(frontier.end(), expansion.begin(), expansion.end());
      }
    }
  }
  return labels;
}

}  // namespace ppc
