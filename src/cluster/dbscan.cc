#include "cluster/dbscan.h"

#include <deque>

namespace ppc {

Result<std::vector<int>> Dbscan::Run(const DissimilarityMatrix& matrix,
                                     const Options& options) {
  if (options.eps < 0.0) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  if (options.min_points == 0) {
    return Status::InvalidArgument("min_points must be >= 1");
  }
  const size_t n = matrix.num_objects();
  std::vector<int> labels(n, kNoise);
  std::vector<bool> visited(n, false);
  // True while a point sits in the current cluster's frontier; filtering at
  // insertion time keeps the queue O(n) per cluster instead of letting
  // every core point re-enqueue its whole (already seen) neighborhood.
  std::vector<bool> enqueued(n, false);

  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (matrix.at(i, j) <= options.eps) out.push_back(j);  // Includes i.
    }
    return out;
  };

  int next_cluster = 0;
  std::deque<size_t> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    std::vector<size_t> seeds = neighbors_of(i);
    if (seeds.size() < options.min_points) continue;  // Noise (for now).

    int cluster = next_cluster++;
    labels[i] = cluster;
    // Insertion-time filter, same outcome as enqueueing wholesale: a
    // visited point could only ever be (re-)claimed as a border point, and
    // an already-enqueued point will be expanded exactly once anyway.
    auto enqueue = [&](const std::vector<size_t>& points) {
      for (size_t j : points) {
        if (visited[j]) {
          if (labels[j] == kNoise) labels[j] = cluster;  // Border claim.
        } else if (!enqueued[j]) {
          enqueued[j] = true;
          frontier.push_back(j);
        }
      }
    };
    enqueue(seeds);
    while (!frontier.empty()) {
      size_t j = frontier.front();
      frontier.pop_front();
      enqueued[j] = false;
      visited[j] = true;
      labels[j] = cluster;
      std::vector<size_t> expansion = neighbors_of(j);
      if (expansion.size() >= options.min_points) {
        enqueue(expansion);
      }
    }
  }
  return labels;
}

}  // namespace ppc
