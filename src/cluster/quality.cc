#include "cluster/quality.h"

#include <algorithm>
#include <limits>
#include <map>

namespace ppc {

namespace {

Status CheckLabels(const std::vector<int>& labels, size_t expected) {
  if (labels.size() != expected) {
    return Status::InvalidArgument("labels size " +
                                   std::to_string(labels.size()) +
                                   " != objects " + std::to_string(expected));
  }
  return Status::OK();
}

/// Pair-counting contingency sums between two labelings.
struct PairCounts {
  double same_both = 0;    // Pairs together in both.
  double same_a_only = 0;  // Together in a, apart in b.
  double same_b_only = 0;  // Apart in a, together in b.
  double apart_both = 0;   // Apart in both.
};

PairCounts CountPairs(const std::vector<int>& a, const std::vector<int>& b) {
  PairCounts counts;
  const size_t n = a.size();
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      bool together_a = a[i] == a[j];
      bool together_b = b[i] == b[j];
      if (together_a && together_b) {
        counts.same_both += 1;
      } else if (together_a) {
        counts.same_a_only += 1;
      } else if (together_b) {
        counts.same_b_only += 1;
      } else {
        counts.apart_both += 1;
      }
    }
  }
  return counts;
}

}  // namespace

Result<double> Quality::Silhouette(const DissimilarityMatrix& matrix,
                                   const std::vector<int>& labels) {
  const size_t n = matrix.num_objects();
  PPC_RETURN_IF_ERROR(CheckLabels(labels, n));
  if (n == 0) return Status::InvalidArgument("empty matrix");

  std::map<int, size_t> cluster_sizes;
  for (int label : labels) cluster_sizes[label] += 1;
  if (cluster_sizes.size() < 2) {
    return Status::InvalidArgument("silhouette needs at least two clusters");
  }

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (cluster_sizes[labels[i]] == 1) continue;  // Scores 0 by convention.
    // Mean intra-cluster distance and minimal mean inter-cluster distance.
    std::map<int, double> sums;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[labels[j]] += matrix.at(i, j);
    }
    double a = sums[labels[i]] /
               static_cast<double>(cluster_sizes[labels[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [label, sum] : sums) {
      if (label == labels[i]) continue;
      b = std::min(b, sum / static_cast<double>(cluster_sizes[label]));
    }
    double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

Result<std::vector<double>> Quality::WithinClusterMeanSquaredDistance(
    const DissimilarityMatrix& matrix, const std::vector<int>& labels) {
  const size_t n = matrix.num_objects();
  PPC_RETURN_IF_ERROR(CheckLabels(labels, n));

  std::map<int, double> sums;
  std::map<int, size_t> pair_counts;
  std::map<int, bool> present;
  for (size_t i = 0; i < n; ++i) present[labels[i]] = true;
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (labels[i] != labels[j]) continue;
      double d = matrix.at(i, j);
      sums[labels[i]] += d * d;
      pair_counts[labels[i]] += 1;
    }
  }
  std::vector<double> out;
  for (const auto& [label, unused] : present) {
    (void)unused;
    size_t pairs = pair_counts[label];
    out.push_back(pairs == 0 ? 0.0
                             : sums[label] / static_cast<double>(pairs));
  }
  return out;
}

Result<double> Quality::RandIndex(const std::vector<int>& a,
                                  const std::vector<int>& b) {
  if (a.size() != b.size() || a.size() < 2) {
    return Status::InvalidArgument("labelings must agree on size >= 2");
  }
  PairCounts counts = CountPairs(a, b);
  double total = counts.same_both + counts.same_a_only + counts.same_b_only +
                 counts.apart_both;
  return (counts.same_both + counts.apart_both) / total;
}

Result<double> Quality::AdjustedRandIndex(const std::vector<int>& a,
                                          const std::vector<int>& b) {
  if (a.size() != b.size() || a.size() < 2) {
    return Status::InvalidArgument("labelings must agree on size >= 2");
  }
  PairCounts c = CountPairs(a, b);
  double sum_a = c.same_both + c.same_a_only;   // Pairs together in a.
  double sum_b = c.same_both + c.same_b_only;   // Pairs together in b.
  double total = c.same_both + c.same_a_only + c.same_b_only + c.apart_both;
  double expected = sum_a * sum_b / total;
  double max_index = 0.5 * (sum_a + sum_b);
  if (max_index == expected) return 1.0;  // Degenerate (both trivial).
  return (c.same_both - expected) / (max_index - expected);
}

Result<double> Quality::Purity(const std::vector<int>& predicted,
                               const std::vector<int>& truth) {
  if (predicted.size() != truth.size() || predicted.empty()) {
    return Status::InvalidArgument("labelings must agree on nonzero size");
  }
  std::map<int, std::map<int, size_t>> contingency;
  for (size_t i = 0; i < predicted.size(); ++i) {
    contingency[predicted[i]][truth[i]] += 1;
  }
  size_t correct = 0;
  for (const auto& [cluster, histogram] : contingency) {
    (void)cluster;
    size_t best = 0;
    for (const auto& [label, count] : histogram) {
      (void)label;
      best = std::max(best, count);
    }
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

Result<double> Quality::PairwiseF1(const std::vector<int>& predicted,
                                   const std::vector<int>& truth) {
  if (predicted.size() != truth.size() || predicted.size() < 2) {
    return Status::InvalidArgument("labelings must agree on size >= 2");
  }
  PairCounts c = CountPairs(predicted, truth);
  double tp = c.same_both;
  double fp = c.same_a_only;
  double fn = c.same_b_only;
  if (tp == 0.0) return 0.0;
  double precision = tp / (tp + fp);
  double recall = tp / (tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

}  // namespace ppc
