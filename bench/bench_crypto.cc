// Experiment E16 — crypto substrate throughput: the primitives every
// protocol message rides on. Establishes that the masking protocols' costs
// are dominated by data volume, not cryptography (PRNG draws are
// nanoseconds; Paillier operations are milliseconds — the E13 gap).

#include <benchmark/benchmark.h>

#include "crypto/aes128.h"
#include "crypto/det_encrypt.h"
#include "crypto/diffie_hellman.h"
#include "crypto/hmac.h"
#include "crypto/paillier.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "rng/prng.h"

namespace ppc {
namespace {

// The transport hot path: Seal/Open against a cached per-channel context
// (what ChannelTransport does for every frame after the first on a
// channel).
void BM_SecureChannelSeal(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const SecureChannel::Context context(
      SecureChannel::ChannelKey(SecureChannel::kMasterKey, "A", "B"));
  std::string payload(size, 'x');
  uint64_t nonce = 0;
  for (auto _ : state) {
    auto wire = context.Seal("bench.topic", nonce++, payload);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_SecureChannelSeal)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_SecureChannelOpen(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const SecureChannel::Context context(
      SecureChannel::ChannelKey(SecureChannel::kMasterKey, "A", "B"));
  std::string payload(size, 'x');
  std::string wire = context.Seal("bench.topic", 7, payload).TakeValue();
  for (auto _ : state) {
    auto plain = context.Open("bench.topic", wire, "A->B");
    benchmark::DoNotOptimize(plain);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_SecureChannelOpen)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

// The one-shot reference path re-derives subkeys, HMAC midstates, and the
// AES key schedule every call — the fixed cost the cached context
// removes. The gap between this and BM_SecureChannelSeal is the per-frame
// derivation tax.
void BM_SecureChannelSealOneShot(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const std::string channel_key =
      SecureChannel::ChannelKey(SecureChannel::kMasterKey, "A", "B");
  std::string payload(size, 'x');
  uint64_t nonce = 0;
  for (auto _ : state) {
    auto wire =
        SecureChannel::Seal(channel_key, "bench.topic", nonce++, payload);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_SecureChannelSealOneShot)->Arg(64)->Arg(4096);

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string data(size, 'x');
  for (auto _ : state) {
    auto digest = Sha256::Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string data(size, 'x');
  for (auto _ : state) {
    auto mac = HmacSha256::Mac("key", data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Aes128CtrCrypt(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Aes128Ctr ctr = Aes128Ctr::Create(std::string(16, 'k')).TakeValue();
  std::string data(size, 'x');
  for (auto _ : state) {
    auto out = ctr.Crypt("nonce123", data);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_Aes128CtrCrypt)->Arg(64)->Arg(1024)->Arg(65536);

// The in-place keystream kernel itself (no output allocation), per
// block-cipher kernel: 0 = scalar reference, 1 = T-table, 2 = AES-NI
// (skipped when unsupported).
void BM_Aes128Ctr(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const auto kernel = static_cast<Aes128::Kernel>(state.range(1));
  Aes128Ctr ctr =
      Aes128Ctr::CreateWithKernel(std::string(16, 'k'), kernel).TakeValue();
  std::string data(size, 'x');
  for (auto _ : state) {
    auto status = ctr.CryptInPlace("nonce123", data.data(), data.size());
    benchmark::DoNotOptimize(status);
  }
  const char* labels[] = {"scalar", "ttable", "aesni"};
  state.SetLabel(labels[state.range(1)]);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
// The AES-NI variant is registered only on hosts that have the
// instructions, so a full bench run never reports an error case and CI
// can treat any benchmark error as a real failure.
BENCHMARK(BM_Aes128Ctr)->Apply([](benchmark::internal::Benchmark* b) {
  const int max_kernel = Aes128::AesniSupported() ? 2 : 1;
  for (int size : {64, 1024, 65536}) {
    for (int kernel = 0; kernel <= max_kernel; ++kernel) {
      b->Args({size, kernel});
    }
  }
});

void BM_HmacSha256Stream(benchmark::State& state) {
  // The frame-MAC pattern: one precomputed key, per-message streams over
  // topic ":" nonce ciphertext — no concatenation buffer.
  const size_t size = static_cast<size_t>(state.range(0));
  HmacSha256::Key key("key");
  std::string nonce(8, 'n');
  std::string ciphertext(size, 'x');
  for (auto _ : state) {
    HmacSha256::Stream stream(key);
    stream.Update("bench.topic");
    stream.Update(":", 1);
    stream.Update(nonce);
    stream.Update(ciphertext);
    auto mac = stream.Finish();
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_HmacSha256Stream)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_PrngDraw(benchmark::State& state) {
  const PrngKind kind = static_cast<PrngKind>(state.range(0));
  auto prng = MakePrng(kind, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prng->Next());
  }
  state.SetLabel(PrngKindToString(kind));
  state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_PrngDraw)->DenseRange(0, 2);

void BM_PrngReset(benchmark::State& state) {
  // Reset() is on the protocol's hot path (once per matrix row).
  const PrngKind kind = static_cast<PrngKind>(state.range(0));
  auto prng = MakePrng(kind, 1);
  for (auto _ : state) {
    prng->Reset();
    benchmark::DoNotOptimize(prng->Next());
  }
  state.SetLabel(PrngKindToString(kind));
}
BENCHMARK(BM_PrngReset)->DenseRange(0, 2);

void BM_DeterministicEncrypt(benchmark::State& state) {
  DeterministicEncryptor encryptor("key");
  for (auto _ : state) {
    auto token = encryptor.Encrypt("category-value-42");
    benchmark::DoNotOptimize(token);
  }
}
BENCHMARK(BM_DeterministicEncrypt);

void BM_DiffieHellmanExchange(benchmark::State& state) {
  auto rng = MakePrng(PrngKind::kChaCha20, 1);
  auto alice = DiffieHellman::Generate(rng.get());
  auto bob = DiffieHellman::Generate(rng.get());
  for (auto _ : state) {
    auto shared = DiffieHellman::SharedElement(alice.private_key,
                                               bob.public_key);
    auto seed = DiffieHellman::DeriveSeed(shared, "label");
    benchmark::DoNotOptimize(seed);
  }
}
BENCHMARK(BM_DiffieHellmanExchange)->Unit(benchmark::kMillisecond);

void BM_PaillierKeyGen(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    auto rng = MakePrng(PrngKind::kChaCha20, seed++);
    auto keys = GeneratePaillierKeyPair(bits, rng.get());
    benchmark::DoNotOptimize(keys);
  }
  state.counters["bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_PaillierKeyGen)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_PaillierEncrypt(benchmark::State& state) {
  auto keygen = MakePrng(PrngKind::kChaCha20, 1);
  auto keys = GeneratePaillierKeyPair(1024, keygen.get()).TakeValue();
  auto blinding = MakePrng(PrngKind::kChaCha20, 2);
  for (auto _ : state) {
    auto c = keys.public_key.EncryptSigned(123456, blinding.get());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PaillierEncrypt)->Unit(benchmark::kMillisecond);

void BM_PaillierDecrypt(benchmark::State& state) {
  auto keygen = MakePrng(PrngKind::kChaCha20, 1);
  auto keys = GeneratePaillierKeyPair(1024, keygen.get()).TakeValue();
  auto blinding = MakePrng(PrngKind::kChaCha20, 2);
  auto c = keys.public_key.EncryptSigned(123456, blinding.get());
  for (auto _ : state) {
    auto m = keys.private_key.DecryptSigned(c);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PaillierDecrypt)->Unit(benchmark::kMillisecond);

void BM_PaillierHomomorphicAdd(benchmark::State& state) {
  auto keygen = MakePrng(PrngKind::kChaCha20, 1);
  auto keys = GeneratePaillierKeyPair(1024, keygen.get()).TakeValue();
  auto blinding = MakePrng(PrngKind::kChaCha20, 2);
  auto a = keys.public_key.EncryptSigned(1, blinding.get());
  auto b = keys.public_key.EncryptSigned(2, blinding.get());
  for (auto _ : state) {
    auto c = keys.public_key.Add(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PaillierHomomorphicAdd);

}  // namespace
}  // namespace ppc
