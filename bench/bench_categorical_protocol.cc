// Experiment E10 — paper Sec. 4.3: "communication cost for a party with n
// objects is O(n)". Sweeps column size for the data-holder (encryption)
// and third-party (global matrix) sides.

#include <benchmark/benchmark.h>

#include "analysis/comm_model.h"
#include "core/categorical_protocol.h"
#include "crypto/det_encrypt.h"
#include "rng/prng.h"

namespace ppc {
namespace {

std::vector<std::string> RandomCategories(size_t n, size_t domain,
                                          uint64_t seed) {
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back("v" + std::to_string(prng->NextBounded(domain)));
  }
  return out;
}

void BM_CategoricalEncryptColumn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto values = RandomCategories(n, 8, 1);
  DeterministicEncryptor encryptor("shared-holder-key");
  for (auto _ : state) {
    auto tokens = CategoricalProtocol::EncryptColumn(values, encryptor);
    benchmark::DoNotOptimize(tokens);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["payload_B"] =
      static_cast<double>(CommModel::CategoricalPayload(n));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CategoricalEncryptColumn)->RangeMultiplier(4)->Range(64, 16384);

void BM_CategoricalGlobalMatrix(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DeterministicEncryptor encryptor("shared-holder-key");
  auto tokens_a =
      CategoricalProtocol::EncryptColumn(RandomCategories(n, 8, 1), encryptor);
  auto tokens_b =
      CategoricalProtocol::EncryptColumn(RandomCategories(n, 8, 2), encryptor);
  for (auto _ : state) {
    auto matrix = CategoricalProtocol::BuildGlobalMatrix({tokens_a, tokens_b});
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["n_per_party"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * (2 * n) * (2 * n) / 2);
}
BENCHMARK(BM_CategoricalGlobalMatrix)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace ppc
