// Experiment E9 — paper Sec. 4.2, "Analysis of communication costs":
//   initiator DHJ:  O(n^2 + n·p)        (local matrix + masked strings)
//   responder DHK:  O(m^2 + m·q·n·p)    (local matrix + intermediary CCMs)
//
// Sweeps both the number of strings and the string length; counters report
// the model payloads so the quadratic-in-everything responder cost — the
// dominant term the paper calls out — is visible in the output table.

#include <benchmark/benchmark.h>

#include "analysis/comm_model.h"
#include "core/alphanumeric_protocol.h"
#include "data/generators.h"
#include "rng/prng.h"

namespace ppc {
namespace {

std::vector<std::vector<uint8_t>> RandomStrings(size_t count, size_t length,
                                                uint64_t seed) {
  Alphabet dna = Alphabet::Dna();
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  std::vector<std::vector<uint8_t>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(
        dna.Encode(Generators::RandomString(length, dna, prng.get()))
            .TakeValue());
  }
  return out;
}

void BM_AlnumInitiatorMask(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t p = static_cast<size_t>(state.range(1));
  Alphabet dna = Alphabet::Dna();
  auto strings = RandomStrings(n, p, 1);
  auto rng_jt = MakePrng(PrngKind::kChaCha20, 2);
  for (auto _ : state) {
    auto masked =
        AlphanumericProtocol::MaskStrings(strings, dna, rng_jt.get());
    benchmark::DoNotOptimize(masked);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["p"] = static_cast<double>(p);
  state.counters["payload_B"] = static_cast<double>(
      CommModel::AlnumInitiatorPayload(std::vector<uint64_t>(n, p)));
  state.SetItemsProcessed(state.iterations() * n * p);
}
BENCHMARK(BM_AlnumInitiatorMask)
    ->ArgsProduct({{8, 32, 128, 512}, {16, 64, 256}});

void BM_AlnumResponderGrids(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t p = static_cast<size_t>(state.range(1));
  Alphabet dna = Alphabet::Dna();
  auto initiator = RandomStrings(n, p, 1);
  auto responder = RandomStrings(n, p, 3);
  auto rng_jt = MakePrng(PrngKind::kChaCha20, 2);
  auto masked = AlphanumericProtocol::MaskStrings(initiator, dna,
                                                  rng_jt.get())
                    .TakeValue();
  for (auto _ : state) {
    auto grids =
        AlphanumericProtocol::BuildMaskedGrids(responder, masked, dna);
    benchmark::DoNotOptimize(grids);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["p"] = static_cast<double>(p);
  state.counters["payload_B"] = static_cast<double>(
      CommModel::AlnumResponderPayload(std::vector<uint64_t>(n, p),
                                       std::vector<uint64_t>(n, p), 1));
  state.SetItemsProcessed(state.iterations() * n * n * p * p);
}
BENCHMARK(BM_AlnumResponderGrids)->ArgsProduct({{4, 8, 16, 32}, {16, 64}});

void BM_AlnumThirdPartyDecode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t p = static_cast<size_t>(state.range(1));
  Alphabet dna = Alphabet::Dna();
  auto initiator = RandomStrings(n, p, 1);
  auto responder = RandomStrings(n, p, 3);
  auto rng_jt_i = MakePrng(PrngKind::kChaCha20, 2);
  auto rng_jt_tp = MakePrng(PrngKind::kChaCha20, 2);
  auto masked = AlphanumericProtocol::MaskStrings(initiator, dna,
                                                  rng_jt_i.get())
                    .TakeValue();
  auto grids = AlphanumericProtocol::BuildMaskedGrids(responder, masked, dna);
  for (auto _ : state) {
    auto distances = AlphanumericProtocol::RecoverDistances(
        grids, n, n, dna, rng_jt_tp.get());
    benchmark::DoNotOptimize(distances);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["p"] = static_cast<double>(p);
  state.SetItemsProcessed(state.iterations() * n * n * p * p);
}
BENCHMARK(BM_AlnumThirdPartyDecode)->ArgsProduct({{4, 8, 16}, {16, 64}});

}  // namespace
}  // namespace ppc
