// Row-kernel microbenchmarks: the scalar reference loops versus the AVX2
// paths of distance/kernels.h, pinned explicitly so both legs run on any
// machine that supports AVX2. These are the inner loops of the quadratic
// phases 4-5 — after PR 5 removed the per-frame crypto tax, the
// comparison/recover/dissimilarity sweeps became the dominant per-row
// cost, and the tiled pipeline multiplies them by every row of every
// holder pair. Acceptance gate for the kernel PR: the avx2 legs must run
// >= 2x the scalar legs.
//
// Both paths are bit-identical (tests/distance_kernels_test.cc); only
// wall-clock differs here.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "distance/kernels.h"
#include "rng/prng.h"

namespace ppc {
namespace {

// The ctest env overrides must not leak in (see bench_end_to_end.cc);
// PPC_FORCE_SCALAR_KERNELS would silently turn the avx2 legs scalar.
[[maybe_unused]] const bool kEnvCleared = [] {
  unsetenv("PPC_FORCE_SCALAR_KERNELS");
  return true;
}();

// Elements per row call. L1-resident (24 KB at 3 u64 streams) so the legs
// measure the kernel, not the cache hierarchy — at 4096 both paths go
// memory-bound and converge.
constexpr size_t kRow = 1024;

// Pins the requested kernel for one benchmark leg, skipping the leg
// cleanly when the CPU lacks AVX2. Returns false if skipped.
bool PinKernel(benchmark::State& state, DistanceKernels::Kernel kernel) {
  if (kernel == DistanceKernels::Kernel::kAvx2 &&
      !DistanceKernels::Avx2Supported()) {
    state.SkipWithError("AVX2 not supported on this CPU");
    return false;
  }
  if (!DistanceKernels::PinForTesting(kernel).ok()) {
    state.SkipWithError("failed to pin kernel");
    return false;
  }
  state.SetLabel(DistanceKernels::KernelToString(kernel));
  return true;
}

DistanceKernels::Kernel KernelArg(const benchmark::State& state) {
  return state.range(0) == 0 ? DistanceKernels::Kernel::kScalar
                             : DistanceKernels::Kernel::kAvx2;
}

std::vector<uint64_t> RandomU64Row(uint64_t seed, size_t n) {
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  std::vector<uint64_t> row(n);
  for (uint64_t& v : row) v = prng->Next();
  return row;
}

void BM_AddSignedRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  std::vector<uint64_t> masked = RandomU64Row(1, kRow);
  std::vector<uint64_t> negate = RandomU64Row(2, kRow);
  for (uint64_t& v : negate) v = (v & 1) ? ~0ull : 0ull;
  std::vector<uint64_t> out(kRow);
  for (auto _ : state) {
    DistanceKernels::AddSignedRow(masked.data(), negate.data(),
                                  0x9e3779b97f4a7c15ull, out.data(), kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow * sizeof(uint64_t));
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_AddSignedRow)->Arg(0)->Arg(1);

void BM_SubAbsRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  std::vector<uint64_t> cells = RandomU64Row(3, kRow);
  std::vector<uint64_t> masks = RandomU64Row(4, kRow);
  std::vector<uint64_t> out(kRow);
  for (auto _ : state) {
    DistanceKernels::SubAbsRow(cells.data(), masks.data(), out.data(), kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow * sizeof(uint64_t));
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_SubAbsRow)->Arg(0)->Arg(1);

void BM_AbsDiffRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  std::vector<uint64_t> raw = RandomU64Row(5, kRow);
  std::vector<int64_t> values(kRow);
  for (size_t i = 0; i < kRow; ++i) {
    values[i] = static_cast<int64_t>(raw[i] >> 16);  // Stay far from 2^63.
  }
  std::vector<double> out(kRow);
  for (auto _ : state) {
    DistanceKernels::AbsDiffRow(123456789, values.data(), out.data(), kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow * sizeof(int64_t));
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_AbsDiffRow)->Arg(0)->Arg(1);

void BM_AbsDiffScaledRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  std::vector<uint64_t> raw = RandomU64Row(6, kRow);
  std::vector<int64_t> values(kRow);
  for (size_t i = 0; i < kRow; ++i) {
    values[i] = static_cast<int64_t>(raw[i] >> 16);
  }
  std::vector<double> out(kRow);
  for (auto _ : state) {
    DistanceKernels::AbsDiffScaledRow(123456789, values.data(), 1e-6,
                                      out.data(), kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow * sizeof(int64_t));
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_AbsDiffScaledRow)->Arg(0)->Arg(1);

void BM_U64ToDoubleRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  std::vector<uint64_t> in = RandomU64Row(7, kRow);
  std::vector<double> out(kRow);
  for (auto _ : state) {
    DistanceKernels::U64ToDoubleRow(in.data(), out.data(), kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow * sizeof(uint64_t));
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_U64ToDoubleRow)->Arg(0)->Arg(1);

void BM_U64ToDoubleScaledRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  std::vector<uint64_t> in = RandomU64Row(8, kRow);
  std::vector<double> out(kRow);
  for (auto _ : state) {
    DistanceKernels::U64ToDoubleScaledRow(in.data(), 1e-6, out.data(), kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow * sizeof(uint64_t));
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_U64ToDoubleScaledRow)->Arg(0)->Arg(1);

void BM_SubModRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  constexpr size_t kAlphabet = 26;
  std::vector<uint64_t> raw = RandomU64Row(9, kRow);
  std::vector<uint8_t> masked(kRow);
  for (size_t i = 0; i < kRow; ++i) {
    masked[i] = static_cast<uint8_t>(raw[i] % kAlphabet);
  }
  std::vector<uint8_t> out(kRow);
  for (auto _ : state) {
    DistanceKernels::SubModRow(masked.data(), 17, kAlphabet, out.data(),
                               kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow);
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_SubModRow)->Arg(0)->Arg(1);

void BM_NotEqualRow(benchmark::State& state) {
  if (!PinKernel(state, KernelArg(state))) return;
  constexpr size_t kAlphabet = 26;
  std::vector<uint64_t> raw_c = RandomU64Row(10, kRow);
  std::vector<uint64_t> raw_m = RandomU64Row(11, kRow);
  std::vector<uint8_t> cells(kRow), masks(kRow);
  for (size_t i = 0; i < kRow; ++i) {
    cells[i] = static_cast<uint8_t>(raw_c[i] % kAlphabet);
    masks[i] = static_cast<uint8_t>(raw_m[i] % kAlphabet);
  }
  std::vector<uint8_t> out(kRow);
  for (auto _ : state) {
    DistanceKernels::NotEqualRow(cells.data(), masks.data(), out.data(),
                                 kRow);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kRow);
  DistanceKernels::ClearPinForTesting();
}
BENCHMARK(BM_NotEqualRow)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ppc
