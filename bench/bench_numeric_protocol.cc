// Experiment E8 — paper Sec. 4.1, "Analysis of communication costs":
//   initiator DHJ:  O(n^2 + n)   (local matrix + masked vector)
//   responder DHK:  O(m^2 + m·n) (local matrix + comparison matrix)
//
// Each benchmark runs the protocol step over vectors of size n (= m) and
// reports the *measured* payload bytes next to the closed-form model as
// counters, so the shape of the cost curves can be read off directly.
// Per-pair masking (the frequency-attack mitigation) is benchmarked at the
// same sizes to show the O(n) -> O(n·m) initiator blow-up.

#include <benchmark/benchmark.h>

#include "analysis/comm_model.h"
#include "core/numeric_protocol.h"
#include "rng/distributions.h"
#include "rng/prng.h"

namespace ppc {
namespace {

std::vector<int64_t> RandomColumn(size_t n, uint64_t seed) {
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  std::vector<int64_t> out(n);
  for (auto& v : out) {
    v = Distributions::UniformInt(prng.get(), -1000000, 1000000);
  }
  return out;
}

void BM_NumericInitiatorBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto values = RandomColumn(n, 1);
  auto rng_jt = MakePrng(PrngKind::kChaCha20, 2);
  auto rng_jk = MakePrng(PrngKind::kChaCha20, 3);
  for (auto _ : state) {
    auto masked = NumericProtocol::MaskVector(values, rng_jt.get(),
                                              rng_jk.get());
    benchmark::DoNotOptimize(masked);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["payload_B"] = static_cast<double>(
      CommModel::NumericInitiatorPayload(n, n, MaskingMode::kBatch));
  state.counters["localmat_B"] =
      static_cast<double>(CommModel::LocalMatrixPayload(n));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NumericInitiatorBatch)->RangeMultiplier(4)->Range(16, 16384);

void BM_NumericInitiatorPerPair(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto values = RandomColumn(n, 1);
  auto rng_jt = MakePrng(PrngKind::kChaCha20, 2);
  auto rng_jk = MakePrng(PrngKind::kChaCha20, 3);
  for (auto _ : state) {
    auto masked = NumericProtocol::MaskMatrixPerPair(values, n, rng_jt.get(),
                                                     rng_jk.get());
    benchmark::DoNotOptimize(masked);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["payload_B"] = static_cast<double>(
      CommModel::NumericInitiatorPayload(n, n, MaskingMode::kPerPair));
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NumericInitiatorPerPair)->RangeMultiplier(4)->Range(16, 1024);

void BM_NumericResponderBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto initiator = RandomColumn(n, 1);
  auto responder = RandomColumn(n, 4);
  auto rng_jt = MakePrng(PrngKind::kChaCha20, 2);
  auto rng_jk_i = MakePrng(PrngKind::kChaCha20, 3);
  auto rng_jk_r = MakePrng(PrngKind::kChaCha20, 3);
  auto masked =
      NumericProtocol::MaskVector(initiator, rng_jt.get(), rng_jk_i.get());
  for (auto _ : state) {
    auto comparison = NumericProtocol::BuildComparisonMatrix(
        responder, masked, rng_jk_r.get());
    benchmark::DoNotOptimize(comparison);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["payload_B"] = static_cast<double>(
      CommModel::NumericResponderPayload(n, n, /*name_len=*/1));
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NumericResponderBatch)->RangeMultiplier(4)->Range(16, 2048);

void BM_NumericThirdPartyRecover(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto initiator = RandomColumn(n, 1);
  auto responder = RandomColumn(n, 4);
  auto rng_jt_i = MakePrng(PrngKind::kChaCha20, 2);
  auto rng_jt_tp = MakePrng(PrngKind::kChaCha20, 2);
  auto rng_jk_i = MakePrng(PrngKind::kChaCha20, 3);
  auto rng_jk_r = MakePrng(PrngKind::kChaCha20, 3);
  auto masked =
      NumericProtocol::MaskVector(initiator, rng_jt_i.get(), rng_jk_i.get());
  auto comparison = NumericProtocol::BuildComparisonMatrix(responder, masked,
                                                           rng_jk_r.get());
  for (auto _ : state) {
    auto distances = NumericProtocol::RecoverDistances(comparison, n, n,
                                                       rng_jt_tp.get());
    benchmark::DoNotOptimize(distances);
  }
  state.counters["n"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NumericThirdPartyRecover)->RangeMultiplier(4)->Range(16, 2048);

// Full three-site exchange at one size, for the per-row of the E8 table.
void BM_NumericFullExchange(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto initiator = RandomColumn(n, 1);
  auto responder = RandomColumn(n, 4);
  for (auto _ : state) {
    auto rng_jt_i = MakePrng(PrngKind::kChaCha20, 2);
    auto rng_jt_tp = MakePrng(PrngKind::kChaCha20, 2);
    auto rng_jk_i = MakePrng(PrngKind::kChaCha20, 3);
    auto rng_jk_r = MakePrng(PrngKind::kChaCha20, 3);
    auto masked = NumericProtocol::MaskVector(initiator, rng_jt_i.get(),
                                              rng_jk_i.get());
    auto comparison = NumericProtocol::BuildComparisonMatrix(
        responder, masked, rng_jk_r.get());
    auto distances = NumericProtocol::RecoverDistances(comparison, n, n,
                                                       rng_jt_tp.get());
    benchmark::DoNotOptimize(distances);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["initiator_B"] = static_cast<double>(
      CommModel::NumericInitiatorPayload(n, n, MaskingMode::kBatch));
  state.counters["responder_B"] = static_cast<double>(
      CommModel::NumericResponderPayload(n, n, 1));
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NumericFullExchange)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace ppc
