// Experiment E18 — the language-statistics attack on the alphanumeric
// protocol (the paper's Sec. 6 future work, implemented): how much of the
// parties' text can the third party reconstruct from the CCMs it
// legitimately receives, as a function of corpus size and language skew?
//
// Counters per row:
//   recovery   — fraction of all characters correctly inferred,
//   components — character classes found (|alphabet| = full substitution-
//                cipher reconstruction),
//   purity     — correctness of the class structure itself.
//
// Expected shape: recovery ~ alphabet-prior max for tiny corpora, rising
// to 1.0 once enough strings are compared and the language is skewed —
// quantifying the leak the paper suspected and motivating CCM-free designs
// as follow-up work.

#include <benchmark/benchmark.h>

#include "analysis/ccm_linkage_attack.h"
#include "core/alphanumeric_protocol.h"
#include "rng/distributions.h"
#include "rng/prng.h"

namespace ppc {
namespace {

std::vector<std::vector<uint8_t>> LanguageStrings(
    size_t count, size_t length, const std::vector<double>& frequencies,
    Prng* prng) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<uint8_t> s;
    s.reserve(length);
    for (size_t j = 0; j < length; ++j) {
      s.push_back(
          static_cast<uint8_t>(Distributions::Categorical(prng, frequencies)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

void RunAttackBench(benchmark::State& state,
                    const std::vector<double>& frequencies,
                    const char* label) {
  const size_t strings = static_cast<size_t>(state.range(0));
  const size_t length = 24;
  Alphabet dna = Alphabet::Dna();
  auto prng = MakePrng(PrngKind::kXoshiro256, 5);
  auto initiator = LanguageStrings(strings, length, frequencies, prng.get());
  auto responder = LanguageStrings(strings, length, frequencies, prng.get());

  auto rng_jt_i = MakePrng(PrngKind::kChaCha20, 6);
  auto rng_jt_tp = MakePrng(PrngKind::kChaCha20, 6);
  auto masked =
      AlphanumericProtocol::MaskStrings(initiator, dna, rng_jt_i.get())
          .TakeValue();
  auto grids = AlphanumericProtocol::BuildMaskedGrids(responder, masked, dna);
  std::vector<CharComparisonMatrix> ccms;
  ccms.reserve(grids.size());
  for (const auto& grid : grids) {
    ccms.push_back(
        AlphanumericProtocol::DecodeCcm(grid, dna, rng_jt_tp.get()));
  }

  CcmLinkageAttack::Outcome outcome;
  for (auto _ : state) {
    outcome = CcmLinkageAttack::Run(ccms, responder.size(), initiator.size(),
                                    responder, initiator, dna, frequencies)
                  .TakeValue();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["strings"] = static_cast<double>(strings);
  state.counters["recovery"] = outcome.recovery_rate;
  state.counters["components"] =
      static_cast<double>(outcome.component_count);
  state.counters["purity"] = outcome.class_purity;
  state.SetLabel(label);
}

void BM_CcmAttackSkewedLanguage(benchmark::State& state) {
  // AT-rich genome-style composition.
  RunAttackBench(state, {0.40, 0.10, 0.10, 0.40}, "skewed A/T");
}
BENCHMARK(BM_CcmAttackSkewedLanguage)->Arg(1)->Arg(2)->Arg(4)->Arg(16);

void BM_CcmAttackHeavilySkewed(benchmark::State& state) {
  RunAttackBench(state, {0.55, 0.25, 0.14, 0.06}, "heavily skewed");
}
BENCHMARK(BM_CcmAttackHeavilySkewed)->Arg(1)->Arg(2)->Arg(4)->Arg(16);

void BM_CcmAttackUniformLanguage(benchmark::State& state) {
  // Uniform language: structure leaks (purity 1) but frequency matching
  // cannot label the classes better than chance.
  RunAttackBench(state, {0.25, 0.25, 0.25, 0.25}, "uniform");
}
BENCHMARK(BM_CcmAttackUniformLanguage)->Arg(4)->Arg(16);

}  // namespace
}  // namespace ppc
