// Session multiplexing throughput: N complete protocol executions over
// TCP, run back-to-back the pre-session-multiplexing way (a fresh
// endpoint — listener, event loop, authenticated connections — per job,
// torn down after it) versus multiplexed (one shared endpoint, N
// concurrent sessions via SessionRegistry). The sequential leg pays every
// job's connection setup, handshake, and per-frame link latency serially;
// the multiplexed leg amortizes one endpoint and overlaps all per-frame
// latency across sessions — the point of the session layer on a protocol
// whose rounds are latency-, not bandwidth-, bound.
//
// The second argument is a simulated per-frame link delay in
// milliseconds, injected on the send path through a channel tap: 0 ms is
// the raw loopback picture (endpoint amortization only — modest on one
// core, where all protocol CPU serializes anyway), 5 ms is a
// conservative cross-organization WAN hop — the deployment the paper's
// parties (separate data-holding organizations plus a third party)
// actually have. A sequential job stream serializes every frame's delay;
// concurrent sessions sleep through each other's.
//
// The headline counter is sessions_per_s: the acceptance gate is >= 3x at
// 8 concurrent sessions versus 8 sequential ones under the WAN link.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/party_runner.h"
#include "core/session_registry.h"
#include "data/generators.h"
#include "data/partition.h"
#include "net/tcp_network.h"

namespace ppc {
namespace {

// Keep the ctest schedule overrides out of the fixtures (see
// bench_end_to_end.cc).
[[maybe_unused]] const bool kThreadEnvCleared = [] {
  unsetenv("PPC_NUM_THREADS");
  unsetenv("PPC_SCHEDULE");
  unsetenv("PPC_TILE_SIZE");
  unsetenv("PPC_FORCE_SCALAR_KERNELS");
  return true;
}();

/// Tiny numeric workload: with n this small the protocol's wall-clock is
/// dominated by per-frame latency and connection setup — exactly the
/// costs a resident daemon fleet pays per job.
LabeledDataset TinyDataset() {
  auto prng = MakePrng(PrngKind::kXoshiro256, 11);
  return Generators::GaussianMixture(
             8, {{{0.0, 0.0}, 1.0, 1.0}, {{10.0, 10.0}, 1.0, 1.0}},
             prng.get())
      .TakeValue();
}

/// One full protocol execution (no clustering request) over `net`: third
/// party and holder B on their own threads, holder A inline — the same
/// role structure a daemon runs per job.
bool RunOneSession(Network* net, const Schema& schema,
                   const std::vector<LabeledDataset>& parts,
                   const SessionPlan& plan, const ProtocolConfig& config) {
  ThirdParty tp("TP", net, config, schema, 9000);
  DataHolder holder_a("A", net, config, 9001);
  DataHolder holder_b("B", net, config, 9002);
  if (!holder_a.SetData(parts[0].data).ok()) return false;
  if (!holder_b.SetData(parts[1].data).ok()) return false;
  Status tp_status, b_status;
  std::thread tp_thread(
      [&] { tp_status = PartyRunner::RunThirdParty(&tp, plan, schema); });
  std::thread b_thread(
      [&] { b_status = PartyRunner::RunHolder(&holder_b, plan, schema); });
  Status a_status = PartyRunner::RunHolder(&holder_a, plan, schema);
  tp_thread.join();
  b_thread.join();
  return tp_status.ok() && a_status.ok() && b_status.ok();
}

/// One endpoint hosting all three parties, with an optional simulated
/// per-frame link delay tapped onto every directed channel. The tap
/// blocks the sending session's thread only (taps run outside transport
/// locks), so sequential jobs pay every frame's delay back-to-back while
/// concurrent sessions sleep through each other's — the same asymmetry a
/// real WAN hop produces.
Result<std::unique_ptr<TcpNetwork>> MakeEndpoint(int delay_ms) {
  auto net = TcpNetwork::Create({});
  if (!net.ok()) return net.status();
  (*net)->set_receive_timeout(std::chrono::seconds(30));
  const char* kParties[] = {"TP", "A", "B"};
  for (const char* party : kParties) {
    Status status = (*net)->RegisterParty(party);
    if (!status.ok()) return status;
  }
  if (delay_ms > 0) {
    const auto delay = std::chrono::milliseconds(delay_ms);
    for (const char* from : kParties) {
      for (const char* to : kParties) {
        if (from == to) continue;
        (*net)->AddTap(from, to, [delay](const WireFrame&) {
          std::this_thread::sleep_for(delay);
        });
      }
    }
  }
  return std::move(net).TakeValue();
}

/// Distinct session ids forever: SessionRegistry ids are single-use and
/// the transport keeps per-session channel state for the endpoint's
/// lifetime, so benchmark iterations must never reuse one.
std::string FreshSessionId() {
  static std::atomic<uint64_t> counter{0};
  return "bench-" + std::to_string(counter.fetch_add(1));
}

// The old deployment shape: one job at a time, each on its own
// freshly-dialed endpoint, torn down when the job finishes. Setup and
// teardown are in the timed region on purpose — that is what every job
// costs without a resident multiplexed daemon.
void BM_SequentialSessions(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const int delay_ms = static_cast<int>(state.range(1));
  LabeledDataset data = TinyDataset();
  auto parts = Partitioner::RoundRobin(data, 2).TakeValue();
  const Schema& schema = data.data.schema();
  ProtocolConfig config;
  SessionPlan plan;
  plan.holder_order = {"A", "B"};

  for (auto _ : state) {
    for (size_t s = 0; s < sessions; ++s) {
      auto net = MakeEndpoint(delay_ms).TakeValue();
      bool ok = RunOneSession(net.get(), schema, parts, plan, config);
      benchmark::DoNotOptimize(ok);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * sessions));
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["link_delay_ms"] = static_cast<double>(delay_ms);
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * sessions),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialSessions)
    ->ArgsProduct({{1, 8, 64}, {0, 5}})
    ->ArgNames({"sessions", "delay_ms"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Daemon shape: one resident endpoint, N concurrent logical sessions over
// its shared authenticated connections. The single setup is timed too —
// amortizing it across jobs is part of the win.
void BM_MultiplexedSessions(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const int delay_ms = static_cast<int>(state.range(1));
  LabeledDataset data = TinyDataset();
  auto parts = Partitioner::RoundRobin(data, 2).TakeValue();
  const Schema& schema = data.data.schema();
  ProtocolConfig config;
  SessionPlan plan;
  plan.holder_order = {"A", "B"};

  for (auto _ : state) {
    auto net = MakeEndpoint(delay_ms).TakeValue();
    bool ok = true;
    {
      SessionRegistry registry(net.get());
      for (size_t s = 0; s < sessions; ++s) {
        ok = ok && registry
                       .StartSession(FreshSessionId(),
                                     [&](Network* snet, CancelToken*) {
                                       return RunOneSession(snet, schema,
                                                            parts, plan,
                                                            config)
                                                  ? Status::OK()
                                                  : Status::Internal(
                                                        "session failed");
                                     })
                       .ok();
      }
      ok = ok && registry.WaitAll().ok();
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * sessions));
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["link_delay_ms"] = static_cast<double>(delay_ms);
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * sessions),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiplexedSessions)
    ->ArgsProduct({{1, 8, 64}, {0, 5}})
    ->ArgNames({"sessions", "delay_ms"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace ppc
