// Experiment E14 — the clustering substrate behind the paper's argument
// that the dissimilarity matrix is algorithm-agnostic and that hierarchical
// methods handle arbitrary shapes better than partitioning methods:
//   * NN-chain vs naive greedy agglomeration (O(n^2) vs O(n^3) ablation),
//   * the four linkages at a fixed size,
//   * k-medoids and DBSCAN on the same matrices,
//   * a shape experiment: ARI of single-linkage vs k-medoids on elongated
//     (chain) clusters — single linkage should win decisively.

#include <benchmark/benchmark.h>

#include "cluster/agglomerative.h"
#include "cluster/dbscan.h"
#include "cluster/kmedoids.h"
#include "cluster/quality.h"
#include "rng/distributions.h"
#include "rng/prng.h"

namespace ppc {
namespace {

DissimilarityMatrix RandomMatrix(size_t n, uint64_t seed) {
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  DissimilarityMatrix d(n);
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      d.set(i, j, prng->NextUnitDouble() + 0.01);
    }
  }
  return d;
}

/// An elongated chain next to a compact blob: the chain's tail is closer to
/// the blob than to the chain's own center, so medoid-based partitioning
/// splits the chain while single linkage keeps it whole.
struct ChainData {
  DissimilarityMatrix matrix;
  std::vector<int> truth;
};

ChainData ChainClusters(size_t chain_length) {
  std::vector<double> points;
  std::vector<int> truth;
  for (size_t i = 0; i < chain_length; ++i) {
    points.push_back(static_cast<double>(i));  // Chain: 0,1,2,...
    truth.push_back(0);
  }
  for (size_t i = 0; i < chain_length / 3; ++i) {
    points.push_back(chain_length + 30.0 + 0.1 * i);  // Compact blob.
    truth.push_back(1);
  }
  DissimilarityMatrix d(points.size());
  for (size_t i = 1; i < points.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      d.set(i, j, std::abs(points[i] - points[j]));
    }
  }
  return {std::move(d), std::move(truth)};
}

void BM_AgglomerativeNnChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DissimilarityMatrix d = RandomMatrix(n, 1);
  for (auto _ : state) {
    auto dendrogram = Agglomerative::Run(d, Linkage::kAverage);
    benchmark::DoNotOptimize(dendrogram);
  }
  state.counters["n"] = static_cast<double>(n);
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_AgglomerativeNnChain)
    ->RangeMultiplier(2)
    ->Range(64, 2048)
    ->Complexity(benchmark::oNSquared);

void BM_AgglomerativeNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DissimilarityMatrix d = RandomMatrix(n, 1);
  for (auto _ : state) {
    auto dendrogram = Agglomerative::RunNaive(d, Linkage::kAverage);
    benchmark::DoNotOptimize(dendrogram);
  }
  state.counters["n"] = static_cast<double>(n);
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_AgglomerativeNaive)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Complexity(benchmark::oNCubed);

void BM_LinkageVariants(benchmark::State& state) {
  const Linkage linkage = static_cast<Linkage>(state.range(0));
  DissimilarityMatrix d = RandomMatrix(512, 1);
  for (auto _ : state) {
    auto dendrogram = Agglomerative::Run(d, linkage);
    benchmark::DoNotOptimize(dendrogram);
  }
  state.SetLabel(LinkageToString(linkage));
}
BENCHMARK(BM_LinkageVariants)->DenseRange(0, 3);

void BM_KMedoids(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DissimilarityMatrix d = RandomMatrix(n, 1);
  KMedoids::Options options;
  options.k = 4;
  for (auto _ : state) {
    auto assignment = KMedoids::Run(d, options);
    benchmark::DoNotOptimize(assignment);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_KMedoids)->RangeMultiplier(2)->Range(64, 512);

void BM_Dbscan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DissimilarityMatrix d = RandomMatrix(n, 1);
  Dbscan::Options options;
  options.eps = 0.1;
  options.min_points = 4;
  for (auto _ : state) {
    auto labels = Dbscan::Run(d, options);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Dbscan)->RangeMultiplier(2)->Range(64, 1024);

// The "arbitrary shapes" argument: single linkage recovers chains that the
// partitioning method breaks. ARI counters tell the story; the timing is
// incidental.
void BM_ShapeRecoverySingleLinkage(benchmark::State& state) {
  ChainData data = ChainClusters(90);
  double ari = 0.0;
  for (auto _ : state) {
    auto dendrogram =
        Agglomerative::Run(data.matrix, Linkage::kSingle).TakeValue();
    auto labels = dendrogram.CutToClusters(2).TakeValue();
    ari = Quality::AdjustedRandIndex(labels, data.truth).TakeValue();
    benchmark::DoNotOptimize(ari);
  }
  state.counters["ARI"] = ari;
}
BENCHMARK(BM_ShapeRecoverySingleLinkage);

void BM_ShapeRecoveryKMedoids(benchmark::State& state) {
  ChainData data = ChainClusters(90);
  KMedoids::Options options;
  options.k = 2;
  double ari = 0.0;
  for (auto _ : state) {
    auto assignment = KMedoids::Run(data.matrix, options)
                          .TakeValue();
    ari = Quality::AdjustedRandIndex(assignment.labels, data.truth)
              .TakeValue();
    benchmark::DoNotOptimize(ari);
  }
  state.counters["ARI"] = ari;
}
BENCHMARK(BM_ShapeRecoveryKMedoids);

}  // namespace
}  // namespace ppc
