// Experiment E17 — edit distance engines (paper Sec. 2.3): the classic DP
// on raw strings, the CCM-driven DP the third party runs, and the banded
// variant used as a record-linkage filter. The CCM path must track the
// direct path closely (same DP, different substitution-cost source).

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "distance/edit_distance.h"
#include "rng/prng.h"

namespace ppc {
namespace {

std::pair<std::string, std::string> RandomPair(size_t length, uint64_t seed) {
  Alphabet dna = Alphabet::Dna();
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  std::string a = Generators::RandomString(length, dna, prng.get());
  // Related string: mutate a rather than drawing fresh, so banded filters
  // have realistic (small-distance) work to do at small bands.
  std::string b = Generators::Mutate(a, dna, 0.05, 0.02, prng.get());
  return {a, b};
}

void BM_EditDistanceDirect(benchmark::State& state) {
  const size_t length = static_cast<size_t>(state.range(0));
  auto [a, b] = RandomPair(length, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance::Compute(a, b));
  }
  state.counters["len"] = static_cast<double>(length);
  state.SetItemsProcessed(state.iterations() * length * length);
}
BENCHMARK(BM_EditDistanceDirect)->RangeMultiplier(4)->Range(16, 4096);

void BM_EditDistanceFromCcm(benchmark::State& state) {
  const size_t length = static_cast<size_t>(state.range(0));
  auto [a, b] = RandomPair(length, 1);
  CharComparisonMatrix ccm = CharComparisonMatrix::FromStrings(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance::ComputeFromCcm(ccm));
  }
  state.counters["len"] = static_cast<double>(length);
  state.SetItemsProcessed(state.iterations() * length * length);
}
BENCHMARK(BM_EditDistanceFromCcm)->RangeMultiplier(4)->Range(16, 4096);

void BM_EditDistanceBanded(benchmark::State& state) {
  const size_t length = static_cast<size_t>(state.range(0));
  const size_t band = static_cast<size_t>(state.range(1));
  auto [a, b] = RandomPair(length, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance::ComputeBanded(a, b, band));
  }
  state.counters["len"] = static_cast<double>(length);
  state.counters["band"] = static_cast<double>(band);
  state.SetItemsProcessed(state.iterations() * length * band);
}
BENCHMARK(BM_EditDistanceBanded)
    ->ArgsProduct({{256, 1024, 4096}, {4, 16, 64}});

void BM_CcmConstruction(benchmark::State& state) {
  const size_t length = static_cast<size_t>(state.range(0));
  auto [a, b] = RandomPair(length, 1);
  for (auto _ : state) {
    auto ccm = CharComparisonMatrix::FromStrings(a, b);
    benchmark::DoNotOptimize(ccm);
  }
  state.counters["len"] = static_cast<double>(length);
}
BENCHMARK(BM_CcmConstruction)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace ppc
