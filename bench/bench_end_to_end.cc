// Experiment E15 — full pipeline scaling: the complete Fig. 11 session
// (key agreement, local matrices, all pairwise comparison protocols, global
// assembly, normalization) as a function of total object count and party
// count, with total wire traffic as a counter.
//
// The paper's observation to reproduce: "the communication costs of our
// protocols are parallel to the computation costs of the operations in case
// of centralized data" — wire bytes grow with the same quadratic shape as
// the centralized distance computation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "data/generators.h"
#include "data/partition.h"
#include "net/tcp_network.h"
#include "session_test_util.h"

namespace ppc {
namespace {

using testutil::MakeSession;
using testutil::MatricesOf;

// The PPC_NUM_THREADS / PPC_SCHEDULE / PPC_TILE_SIZE ctest overrides
// (tests/session_test_util.h) must not leak into benchmark fixtures:
// thread counts, schedule granularity and tiling here are part of the
// experiment design, and a silently-overridden leg would corrupt the
// committed baselines (e.g. a BM_SessionTiled tile=0 label running tiled,
// or a kernel leg pinned to scalar).
[[maybe_unused]] const bool kThreadEnvCleared = [] {
  unsetenv("PPC_NUM_THREADS");
  unsetenv("PPC_SCHEDULE");
  unsetenv("PPC_TILE_SIZE");
  unsetenv("PPC_FORCE_SCALAR_KERNELS");
  return true;
}();

LabeledDataset NumericDataset(size_t n, uint64_t seed) {
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  return Generators::GaussianMixture(
             n,
             {{{0.0, 0.0}, 1.0, 1.0}, {{10.0, 10.0}, 1.0, 1.0},
              {{-10.0, 10.0}, 1.0, 1.0}},
             prng.get())
      .TakeValue();
}

void BM_SessionNumericScaling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  LabeledDataset data = NumericDataset(n, 1);
  auto parts = Partitioner::RoundRobin(data, k).TakeValue();
  ProtocolConfig config;

  uint64_t wire_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    benchmark::DoNotOptimize(ok);
    wire_bytes = fixture.network->GrandTotal().wire_bytes;
  }
  state.counters["objects"] = static_cast<double>(n);
  state.counters["parties"] = static_cast<double>(k);
  state.counters["wire_B"] = static_cast<double>(wire_bytes);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SessionNumericScaling)
    ->ArgsProduct({{32, 64, 128, 256}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_SessionMixedTypes(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prng = MakePrng(PrngKind::kXoshiro256, 2);
  Generators::MixedOptions options;
  options.string_length = 12;
  LabeledDataset data =
      Generators::MixedClusters(n, options, Alphabet::Dna(), prng.get())
          .TakeValue();
  auto parts = Partitioner::RoundRobin(data, 3).TakeValue();
  ProtocolConfig config;

  uint64_t wire_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    benchmark::DoNotOptimize(ok);
    wire_bytes = fixture.network->GrandTotal().wire_bytes;
  }
  state.counters["objects"] = static_cast<double>(n);
  state.counters["wire_B"] = static_cast<double>(wire_bytes);
}
BENCHMARK(BM_SessionMixedTypes)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SessionPlusClustering(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  LabeledDataset data = NumericDataset(n, 3);
  auto parts = Partitioner::RoundRobin(data, 2).TakeValue();
  ProtocolConfig config;

  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    ClusterRequest request;
    request.num_clusters = 3;
    auto outcome = fixture.session->RequestClustering("A", request);
    benchmark::DoNotOptimize(outcome);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["objects"] = static_cast<double>(n);
}
BENCHMARK(BM_SessionPlusClustering)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Per-leg peak-RSS accounting for the tiling sweep: getrusage's ru_maxrss
// is monotonic over the process lifetime, so instead reset the kernel's
// VmHWM watermark before each leg (write "5" to /proc/self/clear_refs)
// and read it back from /proc/self/status afterwards. The watermark resets
// to the *current* RSS, so first return the allocator's retained free heap
// to the kernel — otherwise small legs after a big one inherit its floor.
// Linux/glibc-only; the helpers degrade to no-op/0 elsewhere.
void ResetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

double PeakRssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  double mb = 0.0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

// The tentpole sweep: whole-matrix (tile=0) versus tiled phase-4/5
// pipelines at tile sizes 32 and 128, over growing object counts. Two
// things to read off each leg: wall-clock (the tiled graph must not cost
// throughput — same arithmetic, same wire bytes modulo per-tile headers)
// and peak_rss_MB (the point of tiling: peak memory tracks O(n * tile)
// working sets instead of O(n^2) whole-matrix staging buffers).
void BM_SessionTiled(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t tile = static_cast<size_t>(state.range(1));
  LabeledDataset data = NumericDataset(n, 8);
  auto parts = Partitioner::RoundRobin(data, 2).TakeValue();
  ProtocolConfig config;
  config.tile_size = tile;

  uint64_t wire_bytes = 0;
  double peak_mb = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    ResetPeakRss();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    benchmark::DoNotOptimize(ok);
    state.PauseTiming();
    peak_mb = PeakRssMb();
    wire_bytes = fixture.network->GrandTotal().wire_bytes;
    state.ResumeTiming();
  }
  state.counters["objects"] = static_cast<double>(n);
  state.counters["tile"] = static_cast<double>(tile);
  state.counters["wire_B"] = static_cast<double>(wire_bytes);
  state.counters["peak_rss_MB"] = peak_mb;
  state.SetItemsProcessed(state.iterations() * n * n);
  state.SetLabel(tile == 0 ? "whole-matrix" : "tiled");
}
BENCHMARK(BM_SessionTiled)
    ->ArgsProduct({{128, 512, 1024}, {0, 32, 128}})
    ->Unit(benchmark::kMillisecond);

// Concurrent protocol engine: the same full session as
// BM_SessionNumericScaling, swept over ProtocolConfig::num_threads (via
// Run(), which keeps threads=1 on the true sequential schedule — the
// baseline RunParallel() would override). The paper's deployment is
// inherently parallel (k sites compute independently; the TP only
// assembles), so threads=1 versus threads=N is the sequential-sum versus
// max-site-work comparison. Results are bit-identical across the sweep;
// only wall-clock may change.
void BM_SessionNumericScalingThreaded(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const size_t k = 4;  // 6 holder pairs: enough independent phase-5 rounds.
  LabeledDataset data = NumericDataset(n, 5);
  auto parts = Partitioner::RoundRobin(data, k).TakeValue();
  ProtocolConfig config;
  config.num_threads = threads;

  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    benchmark::DoNotOptimize(ok);
  }
  state.counters["objects"] = static_cast<double>(n);
  state.counters["parties"] = static_cast<double>(k);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SessionNumericScalingThreaded)
    ->ArgsProduct({{128, 256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Mixed schema (edit-distance grids dominate) under the thread sweep.
void BM_SessionMixedTypesThreaded(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t n = 48;
  auto prng = MakePrng(PrngKind::kXoshiro256, 6);
  Generators::MixedOptions options;
  options.string_length = 12;
  LabeledDataset data =
      Generators::MixedClusters(n, options, Alphabet::Dna(), prng.get())
          .TakeValue();
  auto parts = Partitioner::RoundRobin(data, 4).TakeValue();
  ProtocolConfig config;
  config.num_threads = threads;

  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    benchmark::DoNotOptimize(ok);
  }
  state.counters["objects"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SessionMixedTypesThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Schedule-granularity ablation: the same session on the thread-pool
// executor, over the fine dependency graph versus the conservative
// responder-grouped one (core/schedule.h). k = 2 is the grouped
// schedule's worst case — a single responder, so its phase-5 rounds ran
// strictly serialized; the fine graph overlaps the responder's
// per-attribute computes, the initiator's masking, and the TP's
// unmasking. On a single-core box the two legs must track each other
// (same arithmetic, only edges differ); the gap is the point of the
// bench on a multi-core capture machine.
void BM_SessionSchedule(benchmark::State& state) {
  const bool fine = state.range(0) != 0;
  const size_t threads = static_cast<size_t>(state.range(1));
  const size_t k = 2;
  LabeledDataset data = NumericDataset(192, 7);
  auto parts = Partitioner::RoundRobin(data, k).TakeValue();
  ProtocolConfig config;
  config.num_threads = threads;
  config.schedule_granularity =
      fine ? ScheduleGranularity::kFine : ScheduleGranularity::kGrouped;

  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config).TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->RunParallel().ok();
    benchmark::DoNotOptimize(ok);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel(fine ? "fine" : "grouped");
}
BENCHMARK(BM_SessionSchedule)
    ->ArgsProduct({{0, 1}, {1, 4}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Transport-security ablation: what does AES-CTR+HMAC framing cost the
// whole pipeline versus plaintext channels?
void BM_SessionTransportAblation(benchmark::State& state) {
  const bool secure = state.range(0) != 0;
  LabeledDataset data = NumericDataset(128, 4);
  auto parts = Partitioner::RoundRobin(data, 2).TakeValue();
  ProtocolConfig config;

  uint64_t wire_bytes = 0, payload_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto fixture =
        MakeSession(data.data.schema(), MatricesOf(parts), config,
                    secure ? TransportSecurity::kAuthenticatedEncryption
                           : TransportSecurity::kPlaintext)
            .TakeValue();
    state.ResumeTiming();
    bool ok = fixture.session->Run().ok();
    benchmark::DoNotOptimize(ok);
    wire_bytes = fixture.network->GrandTotal().wire_bytes;
    payload_bytes = fixture.network->GrandTotal().payload_bytes;
  }
  state.counters["wire_B"] = static_cast<double>(wire_bytes);
  state.counters["overhead_B"] =
      static_cast<double>(wire_bytes - payload_bytes);
  state.SetLabel(secure ? "aes-ctr+hmac" : "plaintext");
}
BENCHMARK(BM_SessionTransportAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Transport-backend ablation: the identical session over the in-memory
// simulator versus real loopback TCP sockets (single endpoint hosting all
// parties — every frame still crosses the kernel's socket path). The gap
// is the per-message deployment overhead a multi-site run pays on top of
// the protocol's own crypto and arithmetic.
void BM_SessionTransportBackend(benchmark::State& state) {
  const bool tcp = state.range(0) != 0;
  LabeledDataset data = NumericDataset(128, 4);
  auto parts = Partitioner::RoundRobin(data, 2).TakeValue();
  const Schema& schema = data.data.schema();
  ProtocolConfig config;

  uint64_t wire_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      std::unique_ptr<Network> network;
      if (tcp) {
        auto endpoint = TcpNetwork::Create({}).TakeValue();
        endpoint->set_receive_timeout(std::chrono::seconds(30));
        network = std::move(endpoint);
      } else {
        network = std::make_unique<InMemoryNetwork>();
      }
      ThirdParty tp("TP", network.get(), config, schema, 9000);
      ClusteringSession session(network.get(), config, schema);
      std::vector<std::unique_ptr<DataHolder>> holders;
      bool setup_ok = session.SetThirdParty(&tp).ok();
      for (size_t i = 0; i < parts.size(); ++i) {
        holders.push_back(std::make_unique<DataHolder>(
            testutil::SessionFixture::HolderName(i), network.get(), config,
            9001 + i));
        setup_ok = setup_ok && holders.back()->SetData(parts[i].data).ok() &&
                   session.AddDataHolder(holders.back().get()).ok();
      }
      state.ResumeTiming();
      bool ok = setup_ok && session.Run().ok();
      benchmark::DoNotOptimize(ok);
      // Teardown (for TCP: listener shutdown + thread joins) happens
      // inside this paused scope — only the protocol run is measured.
      state.PauseTiming();
      wire_bytes = network->GrandTotal().wire_bytes;
    }
    state.ResumeTiming();
  }
  state.counters["wire_B"] = static_cast<double>(wire_bytes);
  state.SetLabel(tcp ? "tcp-loopback" : "in-memory");
}
BENCHMARK(BM_SessionTransportBackend)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppc
