// Experiment E13 — the feasibility gap the paper cites as motivation: the
// masking protocols versus Paillier-based homomorphic equivalents (the
// stand-in for Atallah et al. [8] secure sequence comparison).
//
// Counters per row:
//   wire_B      — bytes the initiator ships,
//   ratio_vs_mask — that traffic divided by the masking protocol's.
//
// Expected shape (paper's claim): the masking protocol wins by orders of
// magnitude in both time and bytes, and the string baseline is the worst by
// an additional factor |alphabet|.

#include <benchmark/benchmark.h>

#include "analysis/comm_model.h"
#include "core/alphanumeric_protocol.h"
#include "core/baselines.h"
#include "core/numeric_protocol.h"
#include "data/generators.h"
#include "rng/distributions.h"
#include "rng/prng.h"

namespace ppc {
namespace {

constexpr size_t kPaillierBits = 1024;

std::vector<int64_t> RandomColumn(size_t n, uint64_t seed) {
  auto prng = MakePrng(PrngKind::kXoshiro256, seed);
  std::vector<int64_t> out(n);
  for (auto& v : out) {
    v = Distributions::UniformInt(prng.get(), -100000, 100000);
  }
  return out;
}

const PaillierKeyPair& SharedKeys() {
  static const PaillierKeyPair keys = [] {
    auto rng = MakePrng(PrngKind::kChaCha20, 99);
    return GeneratePaillierKeyPair(kPaillierBits, rng.get()).TakeValue();
  }();
  return keys;
}

// ---------------------------------------------------------------- numeric --

void BM_MaskingNumericExchange(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomColumn(n, 1);
  auto y = RandomColumn(n, 2);
  for (auto _ : state) {
    auto jt_i = MakePrng(PrngKind::kChaCha20, 3);
    auto jt_tp = MakePrng(PrngKind::kChaCha20, 3);
    auto jk_i = MakePrng(PrngKind::kChaCha20, 4);
    auto jk_r = MakePrng(PrngKind::kChaCha20, 4);
    auto masked = NumericProtocol::MaskVector(x, jt_i.get(), jk_i.get());
    auto comparison =
        NumericProtocol::BuildComparisonMatrix(y, masked, jk_r.get());
    auto distances =
        NumericProtocol::RecoverDistances(comparison, n, n, jt_tp.get());
    benchmark::DoNotOptimize(distances);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["wire_B"] = static_cast<double>(
      CommModel::NumericInitiatorPayload(n, n, MaskingMode::kBatch));
  state.counters["ratio_vs_mask"] = 1.0;
}
BENCHMARK(BM_MaskingNumericExchange)->Arg(8)->Arg(32)->Arg(128);

void BM_PaillierNumericExchange(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomColumn(n, 1);
  auto y = RandomColumn(n, 2);
  const PaillierKeyPair& keys = SharedKeys();
  auto blinding = MakePrng(PrngKind::kChaCha20, 5);
  uint64_t wire_bytes = 0;
  for (auto _ : state) {
    auto jk_i = MakePrng(PrngKind::kChaCha20, 4);
    auto jk_r = MakePrng(PrngKind::kChaCha20, 4);
    auto cipher = PaillierNumericBaseline::EncryptInitiator(
        x, keys.public_key, jk_i.get(), blinding.get());
    wire_bytes = PaillierNumericBaseline::WireBytes(cipher, keys.public_key);
    auto matrix = PaillierNumericBaseline::AddResponder(
        y, cipher, keys.public_key, jk_r.get(), blinding.get());
    auto distances =
        PaillierNumericBaseline::Decrypt(matrix, n, n, keys.private_key);
    benchmark::DoNotOptimize(distances);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["wire_B"] = static_cast<double>(wire_bytes);
  state.counters["ratio_vs_mask"] =
      static_cast<double>(wire_bytes) /
      static_cast<double>(
          CommModel::NumericInitiatorPayload(n, n, MaskingMode::kBatch));
}
BENCHMARK(BM_PaillierNumericExchange)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- string --

void BM_MaskingCcmExchange(benchmark::State& state) {
  const size_t p = static_cast<size_t>(state.range(0));
  Alphabet dna = Alphabet::Dna();
  auto prng = MakePrng(PrngKind::kXoshiro256, 6);
  auto s = dna.Encode(Generators::RandomString(p, dna, prng.get())).TakeValue();
  auto t = dna.Encode(Generators::RandomString(p, dna, prng.get())).TakeValue();
  for (auto _ : state) {
    auto jt_i = MakePrng(PrngKind::kChaCha20, 7);
    auto jt_tp = MakePrng(PrngKind::kChaCha20, 7);
    auto masked =
        AlphanumericProtocol::MaskStrings({s}, dna, jt_i.get()).TakeValue();
    auto grids = AlphanumericProtocol::BuildMaskedGrids({t}, masked, dna);
    auto distances = AlphanumericProtocol::RecoverDistances(grids, 1, 1, dna,
                                                            jt_tp.get());
    benchmark::DoNotOptimize(distances);
  }
  state.counters["p"] = static_cast<double>(p);
  state.counters["wire_B"] =
      static_cast<double>(CommModel::AlnumInitiatorPayload({p}));
  state.counters["ratio_vs_mask"] = 1.0;
}
BENCHMARK(BM_MaskingCcmExchange)->Arg(8)->Arg(16)->Arg(32);

void BM_HomomorphicCcmExchange(benchmark::State& state) {
  const size_t p = static_cast<size_t>(state.range(0));
  Alphabet dna = Alphabet::Dna();
  auto prng = MakePrng(PrngKind::kXoshiro256, 6);
  auto s = dna.Encode(Generators::RandomString(p, dna, prng.get())).TakeValue();
  auto t = dna.Encode(Generators::RandomString(p, dna, prng.get())).TakeValue();
  const PaillierKeyPair& keys = SharedKeys();
  auto blinding = MakePrng(PrngKind::kChaCha20, 8);
  for (auto _ : state) {
    auto distance =
        HomomorphicCcmBaseline::Distance(s, t, dna, keys, blinding.get());
    benchmark::DoNotOptimize(distance);
  }
  uint64_t wire = static_cast<uint64_t>(p) * dna.size() *
                  keys.public_key.CiphertextBytes();
  state.counters["p"] = static_cast<double>(p);
  state.counters["wire_B"] = static_cast<double>(wire);
  state.counters["ratio_vs_mask"] =
      static_cast<double>(wire) /
      static_cast<double>(CommModel::AlnumInitiatorPayload({p}));
  state.SetLabel("Atallah-style stand-in");
}
BENCHMARK(BM_HomomorphicCcmExchange)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppc
