// Experiment E11 — the Sec. 4.1 frequency-analysis ablation: how much does
// the third party learn from the comparison matrix, as a function of the
// masking mode and the (public) attribute range?
//
// Counters per row:
//   recovery    — fraction of pairwise differences of DHK's column the TP
//                 recovers (1.0 under batch masking, ~0.5 chance level
//                 under per-pair masking),
//   candidates  — number of value vectors consistent with the recovered
//                 differences and the range (small = near-total breach),
//   feasible    — 1 iff the true vector is among the candidates,
//   extra_bytes — the price of the per-pair defence in initiator payload.

#include <benchmark/benchmark.h>

#include "analysis/comm_model.h"
#include "analysis/frequency_attack.h"
#include "core/numeric_protocol.h"
#include "rng/distributions.h"
#include "rng/prng.h"

namespace ppc {
namespace {

void RunAttackBenchmark(benchmark::State& state, MaskingMode mode) {
  const size_t m = static_cast<size_t>(state.range(0));  // Victim column.
  const int64_t range_hi = state.range(1);
  const size_t n = 8;

  auto data_rng = MakePrng(PrngKind::kXoshiro256, 7);
  std::vector<int64_t> x(n), y(m);
  for (auto& v : x) v = Distributions::UniformInt(data_rng.get(), 0, range_hi);
  for (auto& v : y) v = Distributions::UniformInt(data_rng.get(), 0, range_hi);

  auto jk_i = MakePrng(PrngKind::kChaCha20, 1);
  auto jk_r = MakePrng(PrngKind::kChaCha20, 1);
  auto jt_i = MakePrng(PrngKind::kChaCha20, 2);
  auto jt_tp = MakePrng(PrngKind::kChaCha20, 2);

  std::vector<uint64_t> comparison;
  if (mode == MaskingMode::kBatch) {
    auto masked = NumericProtocol::MaskVector(x, jt_i.get(), jk_i.get());
    comparison = NumericProtocol::BuildComparisonMatrix(y, masked, jk_r.get());
  } else {
    auto masked =
        NumericProtocol::MaskMatrixPerPair(x, m, jt_i.get(), jk_i.get());
    comparison =
        NumericProtocol::AddResponderPerPair(y, n, masked, jk_r.get())
            .TakeValue();
  }

  FrequencyAttack::Outcome outcome;
  for (auto _ : state) {
    outcome = FrequencyAttack::Run(comparison, m, n, jt_tp.get(), mode, 0,
                                   range_hi, y)
                  .TakeValue();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["range"] = static_cast<double>(range_hi);
  state.counters["recovery"] = outcome.difference_recovery_rate;
  state.counters["candidates"] =
      static_cast<double>(outcome.feasible_candidates);
  state.counters["feasible"] = outcome.true_vector_feasible ? 1.0 : 0.0;
  state.counters["extra_bytes"] = static_cast<double>(
      CommModel::NumericInitiatorPayload(n, m, MaskingMode::kPerPair) -
      CommModel::NumericInitiatorPayload(n, m, MaskingMode::kBatch));
}

void BM_FrequencyAttackBatch(benchmark::State& state) {
  RunAttackBenchmark(state, MaskingMode::kBatch);
}
BENCHMARK(BM_FrequencyAttackBatch)
    ->ArgsProduct({{8, 32, 128}, {10, 100, 10000}});

void BM_FrequencyAttackPerPair(benchmark::State& state) {
  RunAttackBenchmark(state, MaskingMode::kPerPair);
}
BENCHMARK(BM_FrequencyAttackPerPair)
    ->ArgsProduct({{8, 32, 128}, {10, 100, 10000}});

}  // namespace
}  // namespace ppc
